"""ibisdev — a thread-per-message baseline device (models MPJ/Ibis).

The paper positions MPJ Express against MPJ/Ibis on two structural
points (Sections II, V-A and VI):

* MPJ/Ibis "starts a new thread for each send or receive operation",
  so posting 650 simultaneous receives "fails with cannot create
  native threads exception", and
* its devices have no selector-style progress engine; higher levels
  "only use blocking versions" of the device methods, so pending
  receives are serviced by per-operation threads that poll — stealing
  CPU from any computation running in parallel (the effect behind the
  11% ANY_SOURCE matrix-multiplication result).

This device reproduces both behaviours honestly:

* every ``isend``/``irecv`` consumes a slot in a bounded thread budget
  (default 640 — the paper observed failure at 650) and raises
  :class:`~repro.xdev.exceptions.ResourceExhaustedError` beyond it;
* receive threads *poll* a per-rank mailbox with a linear matching
  scan — no four-key index, no progress engine — at a configurable
  interval, so their CPU cost is real and measurable.

It is a correct device (all tests pass on it); it is only *structured*
the way the paper says the baseline is structured.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.buffer import Buffer
from repro.mpjdev.request import Request, Status
from repro.xdev.completion import CompletedQueue
from repro.xdev.constants import ANY_SOURCE, ANY_TAG
from repro.xdev.device import Device, DeviceConfig, register_device
from repro.xdev.exceptions import (
    ConnectionSetupError,
    DeviceFinishedError,
    ResourceExhaustedError,
)
from repro.xdev.processid import ProcessID

#: Default cap on concurrently live operation threads per process,
#: chosen just below the paper's observed 650-receive failure point.
DEFAULT_MAX_THREADS = 640

#: Default mailbox polling interval for receive threads (seconds).
DEFAULT_POLL_INTERVAL = 0.001


@dataclass
class _MailboxMessage:
    src_rank: int
    tag: int
    context: int
    data: bytes
    sync_event: Optional[threading.Event] = None
    claimed: bool = False


@dataclass
class _Mailbox:
    lock: threading.Lock = field(default_factory=threading.Lock)
    messages: list[_MailboxMessage] = field(default_factory=list)


class IbisFabric:
    """Shared wiring for an in-process ibisdev job."""

    def __init__(self, nprocs: int) -> None:
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.nprocs = nprocs
        self.pids = [ProcessID(uid=r, address=("ibis", r)) for r in range(nprocs)]
        self.mailboxes = [_Mailbox() for _ in range(nprocs)]
        # The JVM-wide native thread budget, shared by all ranks in the
        # process, like the paper's single-JVM-per-node test.
        self.thread_budget_lock = threading.Lock()
        self.live_threads = 0


@register_device("ibisdev")
class IbisDevice(Device):
    """Thread-per-operation baseline device.

    ``DeviceConfig.options``:

    * ``max_threads`` — the native-thread cap (default 640);
    * ``poll_interval`` — receive-thread polling period in seconds.
    """

    def __init__(self) -> None:
        self._fabric: IbisFabric | None = None
        self._rank = -1
        self._completed = CompletedQueue()
        self._finished = False
        self._max_threads = DEFAULT_MAX_THREADS
        self._poll_interval = DEFAULT_POLL_INTERVAL
        self.stats = {"threads_spawned": 0, "poll_iterations": 0}

    # ------------------------------------------------------------------
    # lifecycle

    def init(self, args: DeviceConfig) -> list[ProcessID]:
        fabric: IbisFabric | None = args.fabric
        if fabric is None:
            if args.nprocs == 1:
                fabric = IbisFabric(1)
            else:
                raise ConnectionSetupError(
                    "ibisdev needs a shared IbisFabric in DeviceConfig.fabric"
                )
        if not (0 <= args.rank < fabric.nprocs):
            raise ConnectionSetupError(
                f"rank {args.rank} out of range for fabric of {fabric.nprocs}"
            )
        options = dict(args.options or {})
        self._max_threads = int(options.get("max_threads", DEFAULT_MAX_THREADS))
        self._poll_interval = float(
            options.get("poll_interval", DEFAULT_POLL_INTERVAL)
        )
        self._fabric = fabric
        self._rank = args.rank
        return list(fabric.pids)

    def id(self) -> ProcessID:
        self._check_live()
        assert self._fabric is not None
        return self._fabric.pids[self._rank]

    def finish(self) -> None:
        self._finished = True

    def _check_live(self) -> None:
        if self._finished:
            raise DeviceFinishedError("ibisdev has been finished")
        if self._fabric is None:
            raise DeviceFinishedError("ibisdev not initialized")

    # ------------------------------------------------------------------
    # the thread budget

    def _spawn(self, target, name: str) -> None:
        """Start an operation thread, charging the fabric-wide budget."""
        assert self._fabric is not None
        fabric = self._fabric
        with fabric.thread_budget_lock:
            if fabric.live_threads >= self._max_threads:
                raise ResourceExhaustedError(
                    f"cannot create native threads: {fabric.live_threads} "
                    f"operation threads already live (cap {self._max_threads})"
                )
            fabric.live_threads += 1
        self.stats["threads_spawned"] += 1

        def run() -> None:
            try:
                target()
            finally:
                with fabric.thread_budget_lock:
                    fabric.live_threads -= 1

        threading.Thread(target=run, name=name, daemon=True).start()

    # ------------------------------------------------------------------
    # sends

    def _deliver(
        self,
        buf: Buffer,
        dest: ProcessID,
        tag: int,
        context: int,
        sync_event: Optional[threading.Event],
    ) -> None:
        assert self._fabric is not None
        buf.commit()
        msg = _MailboxMessage(
            src_rank=self._rank,
            tag=tag,
            context=context,
            data=buf.to_wire(),
            sync_event=sync_event,
        )
        mailbox = self._fabric.mailboxes[dest.uid]
        with mailbox.lock:
            mailbox.messages.append(msg)

    def isend(self, buf: Buffer, dest: ProcessID, tag: int, context: int) -> Request:
        self._check_live()
        request = self._completed.track(Request(Request.SEND, buffer=buf))
        request.tag, request.peer, request.context = tag, dest, context

        def run() -> None:
            self._deliver(buf, dest, tag, context, None)
            request.complete(Status(source=self.id(), tag=tag, size=buf.size))

        # "MPJ/Ibis starts a new thread for each send or receive".
        self._spawn(run, name=f"ibis-send-{self._rank}")
        return request

    def send(self, buf: Buffer, dest: ProcessID, tag: int, context: int) -> None:
        self.isend(buf, dest, tag, context).wait()

    def issend(self, buf: Buffer, dest: ProcessID, tag: int, context: int) -> Request:
        self._check_live()
        request = self._completed.track(Request(Request.SEND, buffer=buf))
        request.tag, request.peer, request.context = tag, dest, context
        matched = threading.Event()

        def run() -> None:
            self._deliver(buf, dest, tag, context, matched)
            matched.wait()
            request.complete(Status(source=self.id(), tag=tag, size=buf.size))

        self._spawn(run, name=f"ibis-ssend-{self._rank}")
        return request

    def ssend(self, buf: Buffer, dest: ProcessID, tag: int, context: int) -> None:
        self.issend(buf, dest, tag, context).wait()

    # ------------------------------------------------------------------
    # receives

    def _match(self, src_rank: int, tag: int, context: int) -> Optional[_MailboxMessage]:
        """Linear scan of the mailbox — the no-index baseline."""
        assert self._fabric is not None
        mailbox = self._fabric.mailboxes[self._rank]
        with mailbox.lock:
            for msg in mailbox.messages:
                if msg.claimed or msg.context != context:
                    continue
                if tag != ANY_TAG and msg.tag != tag:
                    continue
                if src_rank != ANY_SOURCE and msg.src_rank != src_rank:
                    continue
                msg.claimed = True
                mailbox.messages.remove(msg)
                return msg
        return None

    def irecv(self, buf: Buffer, src: ProcessID | int, tag: int, context: int) -> Request:
        self._check_live()
        src_rank = src.uid if isinstance(src, ProcessID) else int(src)
        request = self._completed.track(Request(Request.RECV, buffer=buf))
        request.tag, request.peer, request.context = tag, src, context

        def run() -> None:
            # Poll the mailbox until a matching message shows up.  This
            # is the CPU-stealing behaviour the experiments measure.
            while not self._finished:
                msg = self._match(src_rank, tag, context)
                if msg is not None:
                    buf.load_wire(msg.data)
                    if msg.sync_event is not None:
                        msg.sync_event.set()
                    assert self._fabric is not None
                    request.complete(
                        Status(
                            source=self._fabric.pids[msg.src_rank],
                            tag=msg.tag,
                            size=buf.size,
                            buffer=buf,
                        )
                    )
                    return
                self.stats["poll_iterations"] += 1
                time.sleep(self._poll_interval)

        self._spawn(run, name=f"ibis-recv-{self._rank}")
        return request

    def recv(self, buf: Buffer, src: ProcessID | int, tag: int, context: int) -> Status:
        return self.irecv(buf, src, tag, context).wait()

    # ------------------------------------------------------------------
    # probing

    def _find(self, src_rank: int, tag: int, context: int) -> Optional[_MailboxMessage]:
        assert self._fabric is not None
        mailbox = self._fabric.mailboxes[self._rank]
        with mailbox.lock:
            for msg in mailbox.messages:
                if msg.claimed or msg.context != context:
                    continue
                if tag != ANY_TAG and msg.tag != tag:
                    continue
                if src_rank != ANY_SOURCE and msg.src_rank != src_rank:
                    continue
                return msg
        return None

    def iprobe(self, src: ProcessID | int, tag: int, context: int) -> Status | None:
        self._check_live()
        src_rank = src.uid if isinstance(src, ProcessID) else int(src)
        msg = self._find(src_rank, tag, context)
        if msg is None:
            return None
        assert self._fabric is not None
        return Status(
            source=self._fabric.pids[msg.src_rank],
            tag=msg.tag,
            size=max(0, len(msg.data) - 16),
        )

    def probe(self, src: ProcessID | int, tag: int, context: int) -> Status:
        while True:
            status = self.iprobe(src, tag, context)
            if status is not None:
                return status
            time.sleep(self._poll_interval)

    # ------------------------------------------------------------------
    # progress

    def peek(self, timeout: float | None = None) -> Request:
        self._check_live()
        return self._completed.peek(timeout=timeout)
