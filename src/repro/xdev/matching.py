"""Four-key message matching (paper Section IV-E.2).

A message is identified by ``(context, tag, src)``.  Because receives
may use the wildcards ``ANY_TAG`` and ``ANY_SOURCE``, each *incoming
message* generates four lookup keys::

    (context, tag,     src)
    (context, ANY_TAG, src)
    (context, tag,     ANY_SOURCE)
    (context, ANY_TAG, ANY_SOURCE)

A posted receive is registered under exactly one key — the one
containing whatever wildcards it was posted with — so an incoming
message finds any compatible receive with four O(1) dictionary probes
instead of a linear scan of the pending set.  Symmetrically, arrived
but unmatched ("unexpected") messages are indexed under all four of
their keys, so a newly posted receive finds the earliest compatible
message with a single probe of its own key.

MPI's non-overtaking rule requires that when several candidates match,
the *earliest posted* receive (resp. earliest arrived message) wins.
Entries therefore carry sequence numbers and a claim flag; claimed
entries are lazily popped when they surface at the head of a queue.

This module is deliberately lock-free: the protocol engine serializes
access with its ``receive-communication-sets`` lock, exactly as the
paper's pseudocode does (Figs 4, 5, 7, 8).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.xdev.constants import ANY_SOURCE, ANY_TAG

Key = tuple[int, int, int]


@dataclass
class PostedRecv:
    """A receive request waiting in the pending-recv-request-set."""

    request: Any
    context: int
    tag: int
    src_uid: int  # may be ANY_SOURCE
    seqno: int = 0
    claimed: bool = False

    @property
    def key(self) -> Key:
        return (self.context, self.tag, self.src_uid)


@dataclass
class ArrivedMessage:
    """An arrived message with no matching receive yet.

    For the eager protocol this carries the payload; for rendezvous it
    is a ready-to-send record carrying the sender's request id.
    """

    context: int
    tag: int
    src_uid: int  # always concrete
    size: int
    payload: Any = None  # wire bytes / segment list for eager, None for RTS
    #: Pooled scratch (``RawPool`` bytearray) backing ``payload`` when
    #: the message was stored unexpected; the engine releases it after
    #: delivery (or at device finish).
    storage: Any = None
    send_id: int = 0  # sender-side request id (rendezvous)
    src_pid: Any = None
    is_rts: bool = False
    seqno: int = 0
    claimed: bool = False

    def keys(self) -> tuple[Key, Key, Key, Key]:
        """The four lookup keys this message answers to."""
        return (
            (self.context, self.tag, self.src_uid),
            (self.context, ANY_TAG, self.src_uid),
            (self.context, self.tag, ANY_SOURCE),
            (self.context, ANY_TAG, ANY_SOURCE),
        )


def _prune(q: deque) -> None:
    """Drop claimed entries from the head of *q*."""
    while q and q[0].claimed:
        q.popleft()


class MessageQueues:
    """Pending-recv-request-set and unexpected-message store.

    NOT internally synchronized — callers hold the engine's
    receive-communication-sets lock around every call.
    """

    def __init__(self) -> None:
        self._recvs: dict[Key, deque[PostedRecv]] = {}
        self._msgs: dict[Key, deque[ArrivedMessage]] = {}
        self._seq = itertools.count(1)
        #: Matching outcome counters (engine lock serializes updates).
        #: The unexpected-queue hit rate is
        #: ``recvs_matched_unexpected / recvs_posted``; the posted-queue
        #: hit rate is ``arrivals_matched_posted / arrivals``.
        self.counters = {
            "recvs_posted": 0,
            "recvs_matched_unexpected": 0,
            "recvs_wildcard": 0,
            "arrivals": 0,
            "arrivals_matched_posted": 0,
            "probe_hits": 0,
            "probe_misses": 0,
        }

    # ------------------------------------------------------------------
    # receive side

    def post_recv(self, recv: PostedRecv) -> Optional[ArrivedMessage]:
        """Match *recv* against arrived messages or enqueue it.

        Returns the earliest matching arrived message (claimed and
        removed), or None after enqueuing the receive, mirroring
        Figs 4 and 7: match-or-add under one lock hold.
        """
        counters = self.counters
        counters["recvs_posted"] += 1
        if recv.tag == ANY_TAG or recv.src_uid == ANY_SOURCE:
            counters["recvs_wildcard"] += 1
        key = recv.key
        q = self._msgs.get(key)
        if q is not None:
            _prune(q)
            if q:
                msg = q.popleft()
                msg.claimed = True
                counters["recvs_matched_unexpected"] += 1
                return msg
        recv.seqno = next(self._seq)
        self._recvs.setdefault(key, deque()).append(recv)
        return None

    def arrive(self, msg: ArrivedMessage) -> Optional[PostedRecv]:
        """Match an incoming message against posted receives or store it.

        Probes the four keys and claims the earliest-posted compatible
        receive; otherwise indexes the message under all four keys and
        returns None (Figs 5 and 8: the input handler's match-or-add).
        """
        self.counters["arrivals"] += 1
        best: Optional[PostedRecv] = None
        best_q: Optional[deque] = None
        for key in msg.keys():
            q = self._recvs.get(key)
            if q is None:
                continue
            _prune(q)
            if q and (best is None or q[0].seqno < best.seqno):
                best = q[0]
                best_q = q
        if best is not None:
            assert best_q is not None
            best_q.popleft()
            best.claimed = True
            self.counters["arrivals_matched_posted"] += 1
            return best
        msg.seqno = next(self._seq)
        for key in msg.keys():
            self._msgs.setdefault(key, deque()).append(msg)
        return None

    # ------------------------------------------------------------------
    # probing

    def find_message(self, context: int, tag: int, src_uid: int) -> Optional[ArrivedMessage]:
        """Earliest arrived, unclaimed message matching the pattern.

        *tag*/*src_uid* may be wildcards.  Does not consume the message
        — this backs ``iprobe``/``probe``.
        """
        q = self._msgs.get((context, tag, src_uid))
        if q is not None:
            _prune(q)
        msg = q[0] if q else None
        if msg is not None:
            self.counters["probe_hits"] += 1
        else:
            self.counters["probe_misses"] += 1
        return msg

    def take_rendezvous_recv(self, recv: PostedRecv) -> None:
        """Mark *recv* claimed (it matched an RTS out-of-band)."""
        recv.claimed = True

    # ------------------------------------------------------------------
    # introspection (tests, diagnostics)

    def pending_recv_count(self) -> int:
        """Number of unclaimed posted receives."""
        seen = set()
        for q in self._recvs.values():
            for r in q:
                if not r.claimed:
                    seen.add(id(r))
        return len(seen)

    def unexpected_count(self) -> int:
        """Number of unclaimed arrived messages."""
        seen = set()
        for q in self._msgs.values():
            for m in q:
                if not m.claimed:
                    seen.add(id(m))
        return len(seen)

    def iter_unexpected(self) -> Iterator[ArrivedMessage]:
        """Yield unclaimed arrived messages (diagnostics only)."""
        seen: set[int] = set()
        for q in self._msgs.values():
            for m in q:
                if not m.claimed and id(m) not in seen:
                    seen.add(id(m))
                    yield m
