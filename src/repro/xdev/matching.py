"""Four-key message matching (paper Section IV-E.2).

A message is identified by ``(context, tag, src)``.  Because receives
may use the wildcards ``ANY_TAG`` and ``ANY_SOURCE``, each *incoming
message* generates four lookup keys::

    (context, tag,     src)
    (context, ANY_TAG, src)
    (context, tag,     ANY_SOURCE)
    (context, ANY_TAG, ANY_SOURCE)

A posted receive is registered under exactly one key — the one
containing whatever wildcards it was posted with — so an incoming
message finds any compatible receive with four O(1) dictionary probes
instead of a linear scan of the pending set.  Symmetrically, arrived
but unmatched ("unexpected") messages are indexed under all four of
their keys, so a newly posted receive finds the earliest compatible
message with a single probe of its own key.

MPI's non-overtaking rule requires that when several candidates match,
the *earliest posted* receive (resp. earliest arrived message) wins.
Entries therefore carry sequence numbers and a claim flag; claimed
entries are lazily popped when they surface at the head of a queue.

:class:`MessageQueues` is deliberately lock-free: callers serialize
access — the paper's single ``receive-communication-sets`` lock in the
seed engine (Figs 4, 5, 7, 8), or one lock per shard inside
:class:`ShardedMatcher`, which splits the matching state across
``N`` endpoint shards by content hash (see :mod:`repro.xdev.endpoints`)
and keeps a wildcard domain for ``ANY_TAG`` receives, which span
``(context, tag)`` streams and therefore cannot be routed to one shard.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.xdev.constants import ANY_SOURCE, ANY_TAG
from repro.xdev.endpoints import route_of

Key = tuple[int, int, int]


@dataclass
class PostedRecv:
    """A receive request waiting in the pending-recv-request-set."""

    request: Any
    context: int
    tag: int
    src_uid: int  # may be ANY_SOURCE
    seqno: int = 0
    claimed: bool = False

    @property
    def key(self) -> Key:
        return (self.context, self.tag, self.src_uid)


@dataclass
class ArrivedMessage:
    """An arrived message with no matching receive yet.

    For the eager protocol this carries the payload; for rendezvous it
    is a ready-to-send record carrying the sender's request id.
    """

    context: int
    tag: int
    src_uid: int  # always concrete
    size: int
    payload: Any = None  # wire bytes / segment list for eager, None for RTS
    #: Pooled scratch (``RawPool`` bytearray) backing ``payload`` when
    #: the message was stored unexpected; the engine releases it after
    #: delivery (or at device finish).
    storage: Any = None
    send_id: int = 0  # sender-side request id (rendezvous)
    src_pid: Any = None
    is_rts: bool = False
    #: Causal flow id from the frame header (repro.xdev.causal);
    #: ``flow_seq == 0`` means the frame carried no flow.
    flow_src: int = 0
    flow_seq: int = 0
    seqno: int = 0
    claimed: bool = False

    def keys(self) -> tuple[Key, Key, Key, Key]:
        """The four lookup keys this message answers to."""
        return (
            (self.context, self.tag, self.src_uid),
            (self.context, ANY_TAG, self.src_uid),
            (self.context, self.tag, ANY_SOURCE),
            (self.context, ANY_TAG, ANY_SOURCE),
        )


def _prune(q: deque) -> None:
    """Drop claimed entries from the head of *q*."""
    while q and q[0].claimed:
        q.popleft()


class MessageQueues:
    """Pending-recv-request-set and unexpected-message store.

    NOT internally synchronized — callers hold the engine's
    receive-communication-sets lock around every call.
    """

    def __init__(self, seq: Optional[itertools.count] = None) -> None:
        self._recvs: dict[Key, deque[PostedRecv]] = {}
        self._msgs: dict[Key, deque[ArrivedMessage]] = {}
        # Sequence numbers order posted receives and arrived messages
        # for the non-overtaking rule.  A ShardedMatcher passes one
        # shared counter to every shard so seqnos form a single global
        # order — what lets wildcard receives compare candidates from
        # different shards.
        self._seq = seq if seq is not None else itertools.count(1)
        #: Matching outcome counters (engine lock serializes updates).
        #: The unexpected-queue hit rate is
        #: ``recvs_matched_unexpected / recvs_posted``; the posted-queue
        #: hit rate is ``arrivals_matched_posted / arrivals``.
        self.counters = {
            "recvs_posted": 0,
            "recvs_matched_unexpected": 0,
            "recvs_wildcard": 0,
            "arrivals": 0,
            "arrivals_matched_posted": 0,
            "probe_hits": 0,
            "probe_misses": 0,
            "claims": 0,
        }

    # ------------------------------------------------------------------
    # receive side

    def post_recv(self, recv: PostedRecv) -> Optional[ArrivedMessage]:
        """Match *recv* against arrived messages or enqueue it.

        Returns the earliest matching arrived message (claimed and
        removed), or None after enqueuing the receive, mirroring
        Figs 4 and 7: match-or-add under one lock hold.
        """
        counters = self.counters
        counters["recvs_posted"] += 1
        if recv.tag == ANY_TAG or recv.src_uid == ANY_SOURCE:
            counters["recvs_wildcard"] += 1
        key = recv.key
        q = self._msgs.get(key)
        if q is not None:
            _prune(q)
            if q:
                msg = q.popleft()
                msg.claimed = True
                counters["recvs_matched_unexpected"] += 1
                return msg
        recv.seqno = next(self._seq)
        self._recvs.setdefault(key, deque()).append(recv)
        return None

    def arrive(self, msg: ArrivedMessage) -> Optional[PostedRecv]:
        """Match an incoming message against posted receives or store it.

        Probes the four keys and claims the earliest-posted compatible
        receive; otherwise indexes the message under all four keys and
        returns None (Figs 5 and 8: the input handler's match-or-add).
        """
        self.counters["arrivals"] += 1
        cand = self.best_posted(msg)
        if cand is not None:
            best_q, best = cand
            best_q.popleft()
            best.claimed = True
            self.counters["arrivals_matched_posted"] += 1
            return best
        self.store(msg)
        return None

    def best_posted(
        self, msg: ArrivedMessage
    ) -> Optional[tuple[deque, PostedRecv]]:
        """Earliest-posted receive compatible with *msg*, not yet claimed.

        Returns ``(queue, recv)`` with *recv* at the queue's head, or
        None.  Does not claim — the caller decides (a ShardedMatcher
        may prefer an even earlier wildcard receive).
        """
        best: Optional[PostedRecv] = None
        best_q: Optional[deque] = None
        for key in msg.keys():
            q = self._recvs.get(key)
            if q is None:
                continue
            _prune(q)
            if q and (best is None or q[0].seqno < best.seqno):
                best = q[0]
                best_q = q
        if best is None:
            return None
        assert best_q is not None
        return best_q, best

    def store(self, msg: ArrivedMessage) -> None:
        """Index *msg* as unexpected under all four of its keys."""
        msg.seqno = next(self._seq)
        for key in msg.keys():
            self._msgs.setdefault(key, deque()).append(msg)

    # ------------------------------------------------------------------
    # probing

    def find_message(
        self, context: int, tag: int, src_uid: int, record: bool = True
    ) -> Optional[ArrivedMessage]:
        """Earliest arrived, unclaimed message matching the pattern.

        *tag*/*src_uid* may be wildcards.  Does not consume the message
        — this backs ``iprobe``/``probe``.  ``record=False`` skips the
        probe counters (internal scans by the sharded matcher, which
        counts one probe per user call, not one per shard probed).
        """
        q = self._msgs.get((context, tag, src_uid))
        if q is not None:
            _prune(q)
        msg = q[0] if q else None
        if record:
            if msg is not None:
                self.counters["probe_hits"] += 1
            else:
                self.counters["probe_misses"] += 1
        return msg

    def claim_message(
        self, context: int, tag: int, src_uid: int, record: bool = True
    ) -> Optional[ArrivedMessage]:
        """Find *and consume* the earliest matching unclaimed message.

        The atomic probe-then-claim backing ``improbe``/``mprobe``:
        under the caller's lock the observed message is removed from
        matching, so no concurrent receive on another thread can steal
        it between the probe and the matching ``mrecv``.
        """
        q = self._msgs.get((context, tag, src_uid))
        if q is not None:
            _prune(q)
        if not q:
            if record:
                self.counters["probe_misses"] += 1
            return None
        msg = q.popleft()
        msg.claimed = True
        if record:
            self.counters["probe_hits"] += 1
            self.counters["claims"] += 1
        return msg

    def take_rendezvous_recv(self, recv: PostedRecv) -> None:
        """Mark *recv* claimed (it matched an RTS out-of-band)."""
        recv.claimed = True

    # ------------------------------------------------------------------
    # introspection (tests, diagnostics)

    def pending_recv_count(self) -> int:
        """Number of unclaimed posted receives."""
        seen = set()
        for q in self._recvs.values():
            for r in q:
                if not r.claimed:
                    seen.add(id(r))
        return len(seen)

    def unexpected_count(self) -> int:
        """Number of unclaimed arrived messages."""
        seen = set()
        for q in self._msgs.values():
            for m in q:
                if not m.claimed:
                    seen.add(id(m))
        return len(seen)

    def iter_unexpected(self) -> Iterator[ArrivedMessage]:
        """Yield unclaimed arrived messages (diagnostics only)."""
        seen: set[int] = set()
        for q in self._msgs.values():
            for m in q:
                if not m.claimed and id(m) not in seen:
                    seen.add(id(m))
                    yield m


class _MatchShard:
    """One endpoint's slice of the matching state: a lock + queues.

    Each shard carries its own arrival ticker so a blocking probe on a
    concrete tag sleeps on — and is woken by — *its shard only*.  With
    one global ticker every store would wake every prober in the
    process (a thundering herd of futile rescans, one per prober per
    message); per-shard tickers make probe wakeups 1:1 with relevant
    arrivals, which is where the seed's shared engine burns its CPU in
    the probe-then-recv thread-scaling bench.
    """

    __slots__ = ("lock", "mq", "ticker", "ticks", "waiters")

    def __init__(self, mq: MessageQueues) -> None:
        self.lock = threading.Lock()
        self.mq = mq
        self.ticker = threading.Condition()
        self.ticks = 0
        self.waiters = 0


def _wc_key() -> dict[str, int]:
    return {
        "recvs_posted": 0,
        "recvs_matched_unexpected": 0,
        "recvs_wildcard": 0,
        "arrivals": 0,
        "arrivals_matched_posted": 0,
        "probe_hits": 0,
        "probe_misses": 0,
        "claims": 0,
    }


class ShardedMatcher:
    """Endpoint-sharded matching state, internally synchronized.

    ``N`` :class:`MessageQueues` shards, each behind its own lock, plus
    a **wildcard domain** for receives that cannot name a shard.  A
    frame's shard is ``route_of(context, tag) % N``, the same content
    hash that picks its smdev inbox, so each shard's lock is only ever
    contended by the threads actually sharing that traffic stream.
    Because the route ignores the source, an ``ANY_SOURCE`` receive
    with a concrete tag still maps to exactly one shard — every message
    it could match hashes there too — and only ``ANY_TAG`` receives
    (which span ``(context, tag)`` streams) take the wildcard path.

    Lock order (deadlock freedom, checked by the LockGraph watchdog):
    shard locks in ascending index, then the wildcard lock.  Concrete
    operations take exactly one shard lock; wildcard operations take
    all of them — the "global path" fallback the issue specifies.

    A shared sequence counter spans every shard and the wildcard
    domain, so posted-receive and arrival seqnos form one global order:
    wildcard receives compare candidates across shards by seqno and MPI
    non-overtaking holds globally, not just per shard.

    With ``nshards == 1`` this degenerates to the seed's single lock +
    single MessageQueues — the ``REPRO_ENDPOINTS=1`` baseline.
    """

    def __init__(self, nshards: int) -> None:
        self.nshards = max(1, int(nshards))
        self._seq = itertools.count(1)
        self._shards = [
            _MatchShard(MessageQueues(seq=self._seq)) for _ in range(self.nshards)
        ]
        # Wildcard domain: receives that span shards, in post order.
        self._wc_lock = threading.Lock()
        self._wc_recvs: deque[PostedRecv] = deque()
        #: Unclaimed wildcard receives.  Mutated only under the wildcard
        #: lock; read as a cheap skip hint under a shard lock, which is
        #: safe because wildcard *insertion* holds every shard lock —
        #: an arrival holding its shard lock can never miss a wildcard
        #: receive that was posted before it locked the shard.
        self._wc_count = 0
        self._wc_counters = _wc_key()
        # Global arrival ticker for ANY_TAG blocking probes, which span
        # shards and so cannot wait on one shard's ticker.  Bumped only
        # while such a prober is registered (the register-then-scan
        # protocol below), so shard-local traffic never pays for it.
        self._ticker = threading.Condition()
        self._ticks = 0
        self._probe_waiters = 0
        #: Blocking-probe wakeup accounting (GIL-atomic increments).
        #: ``futile_wakeups`` counts wakeups whose rescan found nothing
        #: — the thundering-herd tax a shared ticker pays and per-shard
        #: tickers mostly eliminate; the thread-scaling bench reports
        #: it per message.
        self.probe_stats = {"blocking_probes": 0, "wakeups": 0, "futile_wakeups": 0}

    # ------------------------------------------------------------------
    # routing

    def shard_index(self, context: int, tag: int) -> int:
        return route_of(context, tag) % self.nshards

    @contextmanager
    def _all_locked(self):
        """Every shard lock (ascending), then the wildcard lock."""
        for shard in self._shards:
            shard.lock.acquire()
        self._wc_lock.acquire()
        try:
            yield
        finally:
            self._wc_lock.release()
            for shard in reversed(self._shards):
                shard.lock.release()

    def _notify_stores(self, shard: _MatchShard) -> None:
        """Wake blocking probes after a store into *shard*.

        The waiter counts are read unlocked as skip hints.  That is
        lost-wakeup-safe because probers *register before scanning*: a
        store whose hint read misses a prober finished storing (under
        the shard lock) before that prober registered, so the prober's
        first scan already sees the message.  When no probe is blocked
        anywhere — every flood's hot path — both hints are zero and a
        store pays nothing here.
        """
        if shard.waiters:
            with shard.ticker:
                shard.ticks += 1
                shard.ticker.notify_all()
        if self._probe_waiters:
            with self._ticker:
                self._ticks += 1
                self._ticker.notify_all()

    # ------------------------------------------------------------------
    # receive side

    def post_recv(self, recv: PostedRecv) -> Optional[ArrivedMessage]:
        """Match-or-add for a posted receive (Figs 4 and 7, sharded).

        Concrete-tag receives — including ``ANY_SOURCE`` ones, since
        routes ignore the source — touch exactly one shard.  ``ANY_TAG``
        receives take the global path: with every shard locked, claim
        the earliest (by global seqno) compatible unexpected message
        from any shard, or park in the wildcard domain.
        """
        if recv.tag == ANY_TAG:
            return self._post_wildcard(recv)
        shard = self._shards[self.shard_index(recv.context, recv.tag)]
        with shard.lock:
            return shard.mq.post_recv(recv)

    def _post_wildcard(self, recv: PostedRecv) -> Optional[ArrivedMessage]:
        with self._all_locked():
            c = self._wc_counters
            c["recvs_posted"] += 1
            c["recvs_wildcard"] += 1
            best: Optional[ArrivedMessage] = None
            for shard in self._shards:
                msg = shard.mq.find_message(
                    recv.context, recv.tag, recv.src_uid, record=False
                )
                if msg is not None and (best is None or msg.seqno < best.seqno):
                    best = msg
            if best is not None:
                best.claimed = True
                c["recvs_matched_unexpected"] += 1
                return best
            recv.seqno = next(self._seq)
            self._wc_recvs.append(recv)
            self._wc_count += 1
            return None

    def take_rendezvous_recv(self, recv: PostedRecv) -> None:
        """Mark *recv* claimed (it matched an RTS out-of-band)."""
        recv.claimed = True

    # ------------------------------------------------------------------
    # arrival side

    def arrive(
        self, msg: ArrivedMessage, on_store=None
    ) -> Optional[PostedRecv]:
        """Match-or-store for an arrival (Figs 5 and 8, sharded).

        Only the arrival's own shard lock is taken; the wildcard lock
        nests inside it when wildcard receives are pending.  The
        earliest of {best shard-posted receive, best wildcard receive}
        wins — seqnos are globally comparable.

        *on_store*, if given, runs under the shard lock immediately
        before the message is indexed: the engine uses it to stage the
        unexpected payload into stable storage *before* the message
        becomes visible to concurrent receivers on other threads.
        """
        shard = self._shards[self.shard_index(msg.context, msg.tag)]
        stored = False
        matched: Optional[PostedRecv] = None
        with shard.lock:
            mq = shard.mq
            mq.counters["arrivals"] += 1
            cand = mq.best_posted(msg)
            if self._wc_count:
                with self._wc_lock:
                    wc = self._best_wildcard(msg)
                    if wc is not None and (
                        cand is None or wc.seqno < cand[1].seqno
                    ):
                        wc.claimed = True
                        self._wc_count -= 1
                        _prune(self._wc_recvs)
                        mq.counters["arrivals_matched_posted"] += 1
                        return wc
            if cand is not None:
                best_q, matched = cand
                best_q.popleft()
                matched.claimed = True
                mq.counters["arrivals_matched_posted"] += 1
            else:
                if on_store is not None:
                    on_store(msg)
                mq.store(msg)
                stored = True
        if stored:
            self._notify_stores(shard)
        return matched

    def _best_wildcard(self, msg: ArrivedMessage) -> Optional[PostedRecv]:
        """Earliest unclaimed wildcard receive compatible with *msg*.

        The deque is in post (seqno) order, so the first compatible
        entry is the earliest.  Caller holds the wildcard lock.
        """
        for recv in self._wc_recvs:
            if recv.claimed:
                continue
            if (
                recv.context == msg.context
                and recv.tag in (ANY_TAG, msg.tag)
                and recv.src_uid in (ANY_SOURCE, msg.src_uid)
            ):
                return recv
        return None

    # ------------------------------------------------------------------
    # probing

    def find_message(
        self, context: int, tag: int, src_uid: int
    ) -> Optional[ArrivedMessage]:
        """Earliest matching unclaimed message; non-consuming (iprobe)."""
        if tag != ANY_TAG:
            shard = self._shards[self.shard_index(context, tag)]
            with shard.lock:
                return shard.mq.find_message(context, tag, src_uid)
        with self._all_locked():
            best: Optional[ArrivedMessage] = None
            for shard in self._shards:
                msg = shard.mq.find_message(context, tag, src_uid, record=False)
                if msg is not None and (best is None or msg.seqno < best.seqno):
                    best = msg
            c = self._wc_counters
            if best is not None:
                c["probe_hits"] += 1
            else:
                c["probe_misses"] += 1
            return best

    def claim_message(
        self, context: int, tag: int, src_uid: int
    ) -> Optional[ArrivedMessage]:
        """Atomic probe-then-claim across shards (improbe/mprobe).

        The returned message has been removed from matching: a
        concurrent receive on another thread cannot consume it.  This
        is the fix for the probe/recv race — a plain ``iprobe`` only
        *observes*, so the observed message can be stolen before the
        follow-up ``recv``; ``claim_message`` makes the pair atomic
        under the shard lock (or, for ``ANY_TAG``, under all of them).
        """
        if tag != ANY_TAG:
            shard = self._shards[self.shard_index(context, tag)]
            with shard.lock:
                return shard.mq.claim_message(context, tag, src_uid)
        with self._all_locked():
            best: Optional[ArrivedMessage] = None
            best_shard: Optional[_MatchShard] = None
            for shard in self._shards:
                msg = shard.mq.find_message(context, tag, src_uid, record=False)
                if msg is not None and (best is None or msg.seqno < best.seqno):
                    best = msg
                    best_shard = shard
            c = self._wc_counters
            if best is None:
                c["probe_misses"] += 1
                return None
            assert best_shard is not None
            q = best_shard.mq._msgs.get((context, tag, src_uid))
            assert q is not None and q[0] is best
            q.popleft()
            best.claimed = True
            c["probe_hits"] += 1
            c["claims"] += 1
            return best

    def wait_message(
        self, context: int, tag: int, src_uid: int
    ) -> ArrivedMessage:
        """Block until a matching message arrives (blocking probe).

        Concrete-tag probes sleep on their shard's ticker, so they are
        woken only by stores into that shard — with sharding on, never
        by other thread pairs' traffic.  ``ANY_TAG`` probes sleep on
        the global ticker, which every store bumps while one is
        registered.

        Lost-wakeup safe by the register-then-scan protocol: the
        waiter count is incremented and the tick sampled *before* the
        scan, so any store the scan misses finds the waiter hint set
        and bumps the tick the wait is watching.
        """
        stats = self.probe_stats
        stats["blocking_probes"] += 1
        wakeups = 0
        if tag != ANY_TAG:
            shard = self._shards[self.shard_index(context, tag)]
            with shard.ticker:
                shard.waiters += 1
                tick = shard.ticks
            try:
                while True:
                    with shard.lock:
                        msg = shard.mq.find_message(context, tag, src_uid)
                    if msg is not None:
                        stats["wakeups"] += wakeups
                        stats["futile_wakeups"] += max(wakeups - 1, 0)
                        return msg
                    with shard.ticker:
                        while shard.ticks == tick:
                            shard.ticker.wait()
                        tick = shard.ticks
                    wakeups += 1
            finally:
                with shard.ticker:
                    shard.waiters -= 1
        with self._ticker:
            self._probe_waiters += 1
            tick = self._ticks
        try:
            while True:
                msg = self.find_message(context, tag, src_uid)
                if msg is not None:
                    stats["wakeups"] += wakeups
                    stats["futile_wakeups"] += max(wakeups - 1, 0)
                    return msg
                with self._ticker:
                    while self._ticks == tick:
                        self._ticker.wait()
                    tick = self._ticks
                wakeups += 1
        finally:
            with self._ticker:
                self._probe_waiters -= 1

    # ------------------------------------------------------------------
    # introspection (tests, diagnostics, obs)

    def counters(self) -> dict[str, int]:
        """Aggregated matching counters (shards + wildcard domain)."""
        total = _wc_key()
        for shard in self._shards:
            with shard.lock:
                for k, v in shard.mq.counters.items():
                    total[k] += v
        with self._wc_lock:
            for k, v in self._wc_counters.items():
                total[k] += v
        return total

    def pending_recv_count(self) -> int:
        n = 0
        for shard in self._shards:
            with shard.lock:
                n += shard.mq.pending_recv_count()
        with self._wc_lock:
            n += sum(1 for r in self._wc_recvs if not r.claimed)
        return n

    def unexpected_count(self) -> int:
        n = 0
        for shard in self._shards:
            with shard.lock:
                n += shard.mq.unexpected_count()
        return n

    def iter_unexpected(self) -> Iterator[ArrivedMessage]:
        for shard in self._shards:
            with shard.lock:
                msgs = list(shard.mq.iter_unexpected())
            yield from msgs

    def depths(self) -> list[dict[str, int]]:
        """Per-shard queue depths, for ``device.introspect()``."""
        out = []
        for shard in self._shards:
            with shard.lock:
                out.append(
                    {
                        "posted_recvs": shard.mq.pending_recv_count(),
                        "unexpected_messages": shard.mq.unexpected_count(),
                    }
                )
        return out

    def wildcard_depth(self) -> int:
        with self._wc_lock:
            return sum(1 for r in self._wc_recvs if not r.claimed)
