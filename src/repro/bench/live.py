"""Live ping-pong benchmark over the real devices (not netsim).

Measures what the zero-copy datapath actually changed: one-way latency
and throughput of a two-rank ping-pong over smdev and niodev, plus the
engines' :class:`~repro.buffer.pool.CopyStats` for the timed window —
how many payload bytes were *copied* (staged through temporary
storage) versus *moved* (placed straight into their final
destination).  ``python -m repro.bench --json`` emits the results as
JSON; the committed ``BENCH_pingpong.json`` at the repo root is one
such run with the pre-change baseline embedded for comparison.

Methodology: each timed iteration sends ``nbytes`` of contiguous
payload rank0→rank1 and back; one-way latency is wall-clock over
``2 * iterations``, best of three trials; throughput is
``nbytes / latency``, in MB/s with MB = 1e6 bytes.  Copy counters are
reset before each trial, so they cover exactly the reported trial's
timed window.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Optional

import numpy as np

from repro.buffer import Buffer

#: Message sizes for the standard sweep: 1 B to 16 MB.
DEFAULT_SIZES = [1, 8, 1024, 64 * 1024, 1 << 20, 16 << 20]

#: Devices the live bench exercises.
DEFAULT_DEVICES = ["smdev", "niodev"]

_TAG_PING, _TAG_PONG = 7, 8


def _iters_for(nbytes: int, quick: bool) -> int:
    """Iteration count scaled so every size finishes in sane time."""
    budget = 4 << 20 if quick else 64 << 20
    iters = max(1, budget // max(nbytes, 1))
    return min(iters, 20 if quick else 200)


def _make_job(device: str, nprocs: int) -> tuple[list[Any], list[Any]]:
    """Stand up an in-process job (same wiring the test suite uses)."""
    from repro.runtime.launcher import _make_fabric
    from repro.xdev import new_instance
    from repro.xdev.device import DeviceConfig

    fabric, nio = _make_fabric(device, nprocs)
    devices = [new_instance(device) for _ in range(nprocs)]
    pids_out: list = [None] * nprocs
    errors: list = []

    def init_one(rank: int) -> None:
        try:
            if nio is not None:
                addrs, socks = nio
                config = DeviceConfig(
                    rank=rank,
                    nprocs=nprocs,
                    peers=addrs,
                    options={"listen_socket": socks[rank]},
                )
            else:
                config = DeviceConfig(rank=rank, nprocs=nprocs, fabric=fabric)
            pids_out[rank] = devices[rank].init(config)
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append((rank, exc))

    threads = [threading.Thread(target=init_one, args=(r,)) for r in range(nprocs)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    if errors:
        raise RuntimeError(f"device init failed: {errors}")
    return devices, pids_out[0]


def _pingpong_loop(dev, peer, payload, iters: int, initiator: bool) -> None:
    send_tag, recv_tag = (
        (_TAG_PING, _TAG_PONG) if initiator else (_TAG_PONG, _TAG_PING)
    )
    for _ in range(iters):
        if initiator:
            sbuf = Buffer()
            sbuf.write(payload)
            dev.send(sbuf, peer, send_tag, 0)
            dev.recv(Buffer(), peer, recv_tag, 0)
        else:
            dev.recv(Buffer(), peer, recv_tag, 0)
            sbuf = Buffer()
            sbuf.write(payload)
            dev.send(sbuf, peer, send_tag, 0)
        # Consume the peek queue like a real application would:
        # completed requests pin their (multi-MB) buffers until
        # drained, which at 16 MB per message dominates memory and
        # skews the timings.
        dev.engine.drain_completed()


def measure_pingpong(
    device: str, nbytes: int, iters: int, warmup: int = 2
) -> dict[str, Any]:
    """One (device, size) cell: latency, throughput, copy counters."""
    devices, pids = _make_job(device, 2)
    try:
        payload = np.zeros(max(nbytes, 1), dtype=np.uint8)[:nbytes]

        def run(n: int) -> float:
            t1 = threading.Thread(
                target=_pingpong_loop, args=(devices[1], pids[0], payload, n, False)
            )
            t1.start()
            t0 = time.perf_counter()
            _pingpong_loop(devices[0], pids[1], payload, n, True)
            elapsed = time.perf_counter() - t0
            t1.join()
            return elapsed

        run(warmup)
        # Best of three timed trials: one-process benchmarks on a
        # shared machine see multi-x run-to-run noise, and the minimum
        # is the standard low-variance latency estimator.
        elapsed = None
        combined: dict[str, int] = {}
        for _ in range(3):
            for d in devices:
                d.engine.copy_stats.reset()
            trial = run(iters)
            if elapsed is None or trial < elapsed:
                elapsed = trial
                stats = [d.engine.copy_stats.snapshot() for d in devices]
                combined = {k: stats[0][k] + stats[1][k] for k in stats[0]}
        latency_s = elapsed / (2 * iters)
        cell: dict[str, Any] = {
            "latency_us": round(latency_s * 1e6, 2),
            "throughput_MBps": round(nbytes / latency_s / 1e6, 2)
            if nbytes
            else 0.0,
            "iterations": iters,
            "copy_stats": combined,
        }
        # Both ranks' metric registries, merged (repro.obs).  Unlike
        # copy_stats these cover the whole cell, warmup included.
        from repro.obs.metrics import merge_snapshots

        snaps = [d.engine.metrics.snapshot() for d in devices]
        if all(s.get("enabled") for s in snaps):
            cell["metrics"] = merge_snapshots(snaps)
        return cell
    finally:
        for d in devices:
            d.finish()


def run_live_bench(
    devices: Optional[list[str]] = None,
    sizes: Optional[list[int]] = None,
    quick: bool = False,
    baseline: Optional[dict] = None,
    progress=None,
) -> dict[str, Any]:
    """The full sweep, as the JSON-ready result dict."""
    devices = devices or list(DEFAULT_DEVICES)
    sizes = sizes or list(DEFAULT_SIZES)
    out: dict[str, Any] = {
        "benchmark": "pingpong",
        "generated_by": "python -m repro.bench --json",
        "methodology": (
            "one-way latency = wall clock / (2 * iterations), best of "
            "3 trials; throughput MB/s with MB = 1e6 bytes; copy_stats "
            "cover the best trial's timed window only (both ranks summed)"
        ),
        "sizes": sizes,
        "devices": {},
    }
    for device in devices:
        cells: dict[str, Any] = {}
        for nbytes in sizes:
            if progress is not None:
                progress(f"{device} {nbytes}B")
            cells[str(nbytes)] = measure_pingpong(
                device, nbytes, _iters_for(nbytes, quick)
            )
        out["devices"][device] = cells
    if baseline is not None:
        out["pre_change"] = baseline
        out["comparison"] = _compare(out["devices"], baseline)
    return out


def _compare(results: dict, baseline: dict) -> dict[str, Any]:
    """Throughput deltas vs. the pre-change baseline, where comparable."""
    deltas: dict[str, Any] = {}
    for device, cells in results.items():
        base_cells = baseline.get(device, {})
        for size, cell in cells.items():
            base = base_cells.get(size)
            if not base or not base.get("throughput_MBps"):
                continue
            new_tp = cell["throughput_MBps"]
            old_tp = base["throughput_MBps"]
            deltas[f"{device}/{size}B"] = {
                "throughput_MBps_before": old_tp,
                "throughput_MBps_after": new_tp,
                "improvement_pct": round((new_tp - old_tp) / old_tp * 100, 1),
            }
    return deltas
