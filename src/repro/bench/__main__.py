"""Print every regenerated figure/table: ``python -m repro.bench``.

Options::

    python -m repro.bench                 # all six figures + summaries
    python -m repro.bench FIG13           # one figure
    python -m repro.bench --summaries     # latency/throughput tables only
    python -m repro.bench --json          # LIVE ping-pong over smdev/niodev
                                          # (latency, throughput, copy stats)
    python -m repro.bench --json --collectives
                                          # LIVE collective cells: auto vs
                                          # seed-default vs every algorithm
    python -m repro.bench tune-coll --out tuned.json
                                          # sweep algorithms, emit a
                                          # REPRO_COLL_TUNING decision table
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.figures import FIGURES
from repro.bench.report import format_figure, format_latency_table

_SUMMARY_SIZES = [1, 1024, 64 * 1024, 1 << 20, 16 << 20]


def _tune_coll(ns) -> int:
    """``python -m repro.bench tune-coll``: measure, emit a decision table."""
    import json

    from repro.bench.collectives import tune_collectives

    table, measurements = tune_collectives(
        nprocs=ns.nprocs or 8,
        device=(ns.devices.split(",")[0] if ns.devices else "smdev"),
        quick=ns.quick,
        progress=lambda msg: print(f"# {msg}", file=sys.stderr),
    )
    if ns.out:
        table.save(ns.out)
        print(f"wrote {ns.out}  (use: REPRO_COLL_TUNING={ns.out})")
    else:
        print(json.dumps(table.to_dict(), indent=2))
    print("# measured cells (us/op):", file=sys.stderr)
    for cell, times in measurements.items():
        ranked = sorted(times.items(), key=lambda kv: kv[1])
        pretty = ", ".join(f"{a}={t:.1f}" for a, t in ranked)
        print(f"#   {cell}: {pretty}", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "figures", nargs="*", metavar="FIGxx",
        help="figure ids to print (default: all)",
    )
    parser.add_argument(
        "--summaries", action="store_true",
        help="print only the per-fabric latency/throughput summaries",
    )
    parser.add_argument(
        "--csv", metavar="DIR",
        help="write each figure as DIR/<FIGxx>.csv instead of printing",
    )
    parser.add_argument(
        "--plot", action="store_true",
        help="draw ASCII charts instead of tables",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="run the LIVE ping-pong bench (real devices, not netsim) "
             "and print JSON: latency, throughput, copy counters",
    )
    parser.add_argument(
        "--out", metavar="FILE",
        help="with --json: also write the JSON to FILE",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="run the live bench with fewer iterations (CI smoke "
             "mode); implies --json",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="with --json: embed FILE as the pre-change comparison",
    )
    parser.add_argument(
        "--devices", metavar="NAMES",
        help="with --json: comma-separated device list (default smdev,niodev)",
    )
    parser.add_argument(
        "--collectives", action="store_true",
        help="with --json: run the collective cells (auto vs seed-default "
             "vs every manual algorithm) instead of ping-pong",
    )
    parser.add_argument(
        "--nprocs", type=int, default=None,
        help="communicator size for collective cells / tune-coll (default 8)",
    )
    parser.add_argument(
        "--threads", action="store_true",
        help="run the many-thread message-rate bench (endpoint-sharded vs "
             "single-endpoint engine) and print JSON; honors --quick/--out",
    )
    parser.add_argument(
        "--scaleout", action="store_true",
        help="run the thousand-rank niodev scale-out bench (barrier + "
             "allgatherv at 128..1024 thread-ranks; connection-count and "
             "FD columns) and print JSON; honors --quick/--out",
    )
    parser.add_argument(
        "--sizes", metavar="N,N,...",
        help="with --scaleout: comma-separated rank counts to sweep",
    )
    parser.add_argument(
        "--procdev", action="store_true",
        help="run the cross-process procdev bench (ranks as OS processes "
             "over shared-memory rings, vs the same workload on smdev "
             "threads) and print JSON; honors --quick/--out",
    )
    ns = parser.parse_args(argv)

    if ns.figures and ns.figures[0] == "tune-coll":
        return _tune_coll(ns)

    if ns.scaleout:
        import json
        from pathlib import Path

        from repro.bench.scaleout import run_scaleout_bench

        result = run_scaleout_bench(
            quick=ns.quick,
            sizes=(
                [int(s) for s in ns.sizes.split(",")] if ns.sizes else None
            ),
            progress=lambda msg: print(f"# {msg}", file=sys.stderr),
        )
        text = json.dumps(result, indent=1)
        print(text)
        if ns.out:
            Path(ns.out).write_text(text + "\n", encoding="utf-8")
        return 0

    if ns.procdev:
        import json
        from pathlib import Path

        from repro.bench.procbench import run_procdev_bench

        result = run_procdev_bench(
            quick=ns.quick,
            progress=lambda msg: print(f"# {msg}", file=sys.stderr),
        )
        text = json.dumps(result, indent=1)
        print(text)
        if ns.out:
            Path(ns.out).write_text(text + "\n", encoding="utf-8")
        return 0

    if ns.threads:
        import json
        from pathlib import Path

        from repro.bench.threads import run_threads_bench

        result = run_threads_bench(
            quick=ns.quick,
            progress=lambda msg: print(f"# {msg}", file=sys.stderr),
        )
        text = json.dumps(result, indent=1)
        print(text)
        if ns.out:
            Path(ns.out).write_text(text + "\n", encoding="utf-8")
        return 0

    if ns.json or ns.quick:
        import json
        from pathlib import Path

        from repro.bench.live import run_live_bench

        progress = lambda msg: print(f"# {msg}", file=sys.stderr)  # noqa: E731
        if ns.collectives:
            from repro.bench.collectives import run_collectives_bench

            result = run_collectives_bench(
                nprocs=ns.nprocs or 8,
                device=(ns.devices.split(",")[0] if ns.devices else "smdev"),
                quick=ns.quick,
                progress=progress,
            )
            text = json.dumps(result, indent=1)
            print(text)
            if ns.out:
                Path(ns.out).write_text(text + "\n", encoding="utf-8")
            return 0

        baseline = None
        if ns.baseline:
            baseline = json.loads(Path(ns.baseline).read_text(encoding="utf-8"))
            # Accept either a bare {device: {size: cell}} map or a full
            # prior --json result.
            if "devices" in baseline:
                baseline = baseline["devices"]
        result = run_live_bench(
            devices=ns.devices.split(",") if ns.devices else None,
            quick=ns.quick,
            baseline=baseline,
            progress=progress,
        )
        text = json.dumps(result, indent=1)
        print(text)
        if ns.out:
            Path(ns.out).write_text(text + "\n", encoding="utf-8")
        return 0

    if ns.plot:
        from repro.bench.plot import ascii_plot

        wanted = [f.upper() for f in ns.figures] or sorted(FIGURES)
        for figure_id in wanted:
            if figure_id not in FIGURES:
                print(f"unknown figure {figure_id}", file=sys.stderr)
                return 2
            fig = FIGURES[figure_id]()
            log_y = "Time" in fig.ylabel  # latency curves span decades
            print(ascii_plot(fig, log_y=log_y))
            print()
        return 0

    if ns.csv:
        from pathlib import Path

        out_dir = Path(ns.csv)
        out_dir.mkdir(parents=True, exist_ok=True)
        wanted = [f.upper() for f in ns.figures] or sorted(FIGURES)
        for figure_id in wanted:
            if figure_id not in FIGURES:
                print(f"unknown figure {figure_id}", file=sys.stderr)
                return 2
            fig = FIGURES[figure_id]()
            path = out_dir / f"{figure_id}.csv"
            path.write_text(fig.to_csv() + "\n", encoding="utf-8")
            print(f"wrote {path}")
        return 0

    if ns.summaries:
        for fabric in ("FastEthernet", "GigabitEthernet", "Myrinet2G"):
            print(format_latency_table(fabric))
            print()
        return 0

    wanted = [f.upper() for f in ns.figures] or sorted(FIGURES)
    unknown = [f for f in wanted if f not in FIGURES]
    if unknown:
        print(f"unknown figure(s): {unknown}; known: {sorted(FIGURES)}", file=sys.stderr)
        return 2
    for figure_id in wanted:
        fig = FIGURES[figure_id]()
        sizes = [s for s in _SUMMARY_SIZES if s in fig.sizes]
        print(format_figure(fig, sizes=sizes))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
