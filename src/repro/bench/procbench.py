"""Cross-process procdev benchmark: processes vs the GIL ceiling.

``python -m repro.bench --procdev`` runs three cells with ranks as
real OS processes (:func:`repro.runtime.localspawn.run_local_job`) and
the identical workloads as smdev thread-ranks, then reports both side
by side:

* **pingpong-xproc** — two process-ranks, 1 KB…4 MB; the per-rank
  copy-stats snapshots prove ``bytes_copied == 0`` for rendezvous
  payloads landed across address spaces.
* **flood** — pairs streaming 1 MB messages concurrently: the
  aggregate-bandwidth cell.  Thread-ranks serialize on the GIL no
  matter how many pairs run; process-ranks scale with cores.
* **allreduce** — 4-rank collective rate.

On a single-core host the process cells *lose* (same core, plus IPC
and process-spawn overhead) — the committed ``BENCH_procdev.json``
reports whatever the host measured, with the core count right next to
it, exactly as the PR 5 thread bench documented the GIL ceiling it
could not escape on one core.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

#: Ping-pong sizes for the cross-process sweep.
XPROC_SIZES = [1024, 64 * 1024, 1 << 20, 4 << 20]


def _worker_module() -> str:
    from repro.bench import procworkers

    return procworkers.__file__


def _merge_rank_cells(results: list) -> dict:
    """Per-size cells from rank 0's view + both ranks' copy stats."""
    out = {}
    r0 = results[0] or {}
    r1 = results[1] or {}
    for size, cell in r0.items():
        merged = dict(cell)
        merged["copy_stats_rank0"] = cell.get("copy_stats", {})
        merged["copy_stats_rank1"] = (r1.get(size) or {}).get("copy_stats", {})
        merged.pop("copy_stats", None)
        merged["bytes_copied"] = sum(
            s.get("bytes_copied", 0)
            for s in (merged["copy_stats_rank0"], merged["copy_stats_rank1"])
        )
        out[size] = merged
    return out


def run_procdev_bench(
    quick: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run the procdev (processes) vs smdev (threads) comparison."""
    from repro.runtime.launcher import run_spmd
    from repro.runtime.localspawn import run_local_job
    from repro.bench import procworkers

    def say(msg: str) -> None:
        if progress is not None:
            progress(msg)

    module = _worker_module()
    iters = 20 if quick else 100
    flood_iters = 20 if quick else 100
    flood_bytes = 1 << 20
    ar_count = (1 << 20) // 8  # 1 MB of float64
    ar_iters = 5 if quick else 20
    nranks = 4

    result: dict = {
        "meta": {
            "cpu_count": os.cpu_count(),
            "quick": quick,
            "note": (
                "procdev cells run ranks as OS processes over shared-memory "
                "rings; smdev cells run the identical workload as threads in "
                "one interpreter. On a single-core host the process cells "
                "pay IPC overhead for no parallelism — see docs/performance.md."
            ),
        }
    }

    say("pingpong: 2 process-ranks over shm rings")
    job = run_local_job(
        2, module, entry="pingpong", args=[XPROC_SIZES, iters], timeout=300
    )
    result["pingpong_xproc"] = _merge_rank_cells(job.results)
    result["pingpong_xproc_job_copy_stats"] = (
        (job.stats or {}).get("copy_stats", {})
    )

    say(f"flood: {nranks} process-ranks, {flood_bytes >> 20} MB messages")
    job = run_local_job(
        nranks, module, entry="flood",
        args=[flood_bytes, flood_iters], timeout=300,
    )
    flood_proc = job.results[0]

    say(f"flood: {nranks} thread-ranks (smdev), same workload")
    flood_sm = run_spmd(
        procworkers.flood, nranks, device="smdev",
        args=(flood_bytes, flood_iters), timeout=300,
    )[0]

    ratio = None
    if flood_sm["aggregate_MBps"]:
        ratio = round(flood_proc["aggregate_MBps"] / flood_sm["aggregate_MBps"], 3)
    result["flood_1MB"] = {
        "procdev_processes": flood_proc,
        "smdev_threads": flood_sm,
        "procdev_over_smdev": ratio,
    }

    say(f"allreduce: {nranks} process-ranks, 1 MB float64")
    job = run_local_job(
        nranks, module, entry="allreduce",
        args=[ar_count, ar_iters], timeout=300,
    )
    ar_proc = job.results[0]

    say(f"allreduce: {nranks} thread-ranks (smdev), same workload")
    ar_sm = run_spmd(
        procworkers.allreduce, nranks, device="smdev",
        args=(ar_count, ar_iters), timeout=300,
    )[0]

    ar_ratio = None
    if ar_sm["rate_MBps"]:
        ar_ratio = round(ar_proc["rate_MBps"] / ar_sm["rate_MBps"], 3)
    result["allreduce_1MB"] = {
        "procdev_processes": ar_proc,
        "smdev_threads": ar_sm,
        "procdev_over_smdev": ar_ratio,
    }
    return result
