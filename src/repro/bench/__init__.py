"""Benchmark harness regenerating every table/figure of the paper.

See DESIGN.md's per-experiment index.  Each figure has a generator in
:mod:`repro.bench.figures` returning the plotted series as plain data,
plus a text renderer in :mod:`repro.bench.report`; the pytest-benchmark
entries under ``benchmarks/`` drive these and assert the shape
properties (orderings, crossovers, dips) the paper reports.
"""

from repro.bench.figures import (
    FIGURES,
    FigureSeries,
    figure10_transfer_time_fast_ethernet,
    figure11_throughput_fast_ethernet,
    figure12_transfer_time_gigabit,
    figure13_throughput_gigabit,
    figure14_transfer_time_myrinet,
    figure15_throughput_myrinet,
)
from repro.bench.report import format_figure, format_latency_table

__all__ = [
    "FIGURES",
    "FigureSeries",
    "figure10_transfer_time_fast_ethernet",
    "figure11_throughput_fast_ethernet",
    "figure12_transfer_time_gigabit",
    "figure13_throughput_gigabit",
    "figure14_transfer_time_myrinet",
    "figure15_throughput_myrinet",
    "format_figure",
    "format_latency_table",
]
