"""Worker entry points for the cross-process procdev benchmark.

These functions run *inside spawned rank processes* (launched by
:func:`repro.runtime.localspawn.run_local_job` with this module's path)
— and, for the apples-to-apples smdev comparison, also inside
``run_spmd`` thread-ranks.  Each returns plain JSON-able numbers that
ride home through the worker result sentinels.

All timed loops use the buffer API on contiguous numpy arrays so the
datapath is the zero-copy segment path, not pickle: the per-rank
``copy_stats`` snapshots they return are the cross-address-space
zero-copy proof (``bytes_copied == 0`` with megabytes moved).
"""

from __future__ import annotations

import time


def pingpong(env, sizes, iterations):
    """Rank0<->rank1 buffer ping-pong; per-size latency + copy stats."""
    import numpy as np

    comm = env.COMM_WORLD
    rank = comm.Rank()
    out = {}
    for nbytes in sizes:
        iters = max(1, int(iterations * min(1.0, (1 << 20) / max(nbytes, 1))))
        buf = np.zeros(nbytes, dtype=np.uint8)
        comm.Barrier()
        # Quiesce: a dissemination barrier's last message can land
        # *after* the barrier returns; give it time to be consumed so
        # its staging bytes don't pollute the timed window's counters.
        time.sleep(0.05)
        env.device.copy_stats.reset()
        t0 = time.perf_counter()
        for _ in range(iters):
            if rank == 0:
                comm.Send(buf, 0, nbytes, None, 1, 7)
                comm.Recv(buf, 0, nbytes, None, 1, 8)
            elif rank == 1:
                comm.Recv(buf, 0, nbytes, None, 0, 7)
                comm.Send(buf, 0, nbytes, None, 0, 8)
        elapsed = time.perf_counter() - t0
        # Snapshot before the closing barrier: its object-path control
        # message would otherwise smear pickle staging bytes into the
        # timed window's counters.
        snap = env.device.copy_stats.snapshot()
        # Hold off the barrier itself, too: the rank whose last op was
        # a Send reaches it first, and its barrier frame would arrive
        # at the peer — unexpected, hence staged with a copy — before
        # the peer's own snapshot line runs.
        time.sleep(0.05)
        comm.Barrier()
        if rank <= 1:
            latency = elapsed / (2 * iters)
            out[str(nbytes)] = {
                "iterations": iters,
                "latency_us": round(latency * 1e6, 2),
                "throughput_MBps": round(nbytes / latency / 1e6, 2),
                "copy_stats": snap,
            }
    return out


def flood(env, nbytes, iterations):
    """Neighbor pairs (0<->1, 2<->3, ...) stream concurrently.

    Even ranks send *iterations* messages of *nbytes*, odd ranks
    receive them; every pair runs at once, so the wall-clock measured
    across the barrier pair is the *aggregate* view — the number that
    the GIL caps for thread-ranks and per-core processes unlock.
    """
    import numpy as np

    comm = env.COMM_WORLD
    rank, size = comm.Rank(), comm.Size()
    peer = rank ^ 1
    buf = np.zeros(nbytes, dtype=np.uint8)
    comm.Barrier()
    time.sleep(0.05)  # quiesce straggler barrier frames (see pingpong)
    env.device.copy_stats.reset()
    t0 = time.perf_counter()
    if peer < size:
        if rank % 2 == 0:
            for _ in range(iterations):
                comm.Send(buf, 0, nbytes, None, peer, 3)
        else:
            for _ in range(iterations):
                comm.Recv(buf, 0, nbytes, None, peer, 3)
    snap = env.device.copy_stats.snapshot()  # own ops done; barrier excluded
    comm.Barrier()
    elapsed = time.perf_counter() - t0
    pair_count = size // 2
    total_bytes = pair_count * iterations * nbytes
    return {
        "nbytes": nbytes,
        "iterations": iterations,
        "pairs": pair_count,
        "elapsed_s": round(elapsed, 4),
        "aggregate_MBps": round(total_bytes / elapsed / 1e6, 2),
        "copy_stats": snap,
    }


def allreduce(env, count, iterations):
    """Job-wide Allreduce of *count* float64 elements, *iterations* times."""
    import numpy as np

    from repro.mpi.datatype import DOUBLE
    from repro.mpi.op import SUM

    comm = env.COMM_WORLD
    rank, size = comm.Rank(), comm.Size()
    send = np.full(count, float(rank + 1), dtype=np.float64)
    recv = np.zeros(count, dtype=np.float64)
    comm.Barrier()
    t0 = time.perf_counter()
    for _ in range(iterations):
        comm.Allreduce(send, 0, recv, 0, count, DOUBLE, SUM)
    elapsed = time.perf_counter() - t0
    expected = sum(range(1, size + 1))
    assert abs(recv[0] - expected) < 1e-9, (recv[0], expected)
    nbytes = count * 8
    per_op = elapsed / iterations
    return {
        "count": count,
        "iterations": iterations,
        "per_op_us": round(per_op * 1e6, 2),
        "rate_MBps": round(nbytes / per_op / 1e6, 2),
    }
