"""Many-thread message-rate benchmark: the endpoint-scaling proof.

``python -m repro.bench --threads`` drives ``T`` concurrent
sender/receiver thread pairs over a two-rank smdev job twice per
round — once with the endpoint-sharded engine (``endpoints = T``) and
once on the single-endpoint path (``endpoints = 1``, the seed's fully
shared engine) — and reports aggregate messages/second for each.  The
committed ``BENCH_threads.json`` at the repo root is one such run.

Each worker pair owns a tag chosen so its ``route_of(context, tag)``
content hash lands on its own shard: with sharding on, a pair's
traffic touches only its own channel-lock shard, smdev inbox (own
input-handler thread), and matching shard, so pairs never contend.
With ``endpoints=1`` the same workload funnels every pair through one
channel lock, one inbox, and one matching lock — the seed's
serialization point that the paper's coarse-grained locking implies.

Methodology (the PR 4 bench discipline):

* **Interleaved trials** — every round times the sharded and the
  single-endpoint configuration back to back on a fresh job each, so
  drift (CPU frequency, page cache, sibling load) hits both equally.
* **Round-paired ratios** — the headline speedup is the *median of
  per-round ratios*, never a ratio of medians from different rounds.
* **Preemptive scheduling** — the timed window runs with the
  interpreter's thread switch interval lowered to 100 µs (restored
  after).  CPython's default 5 ms quantum hides lock convoys that any
  preemptively scheduled runtime — the paper's JVM above all — suffers
  constantly; shortening the quantum makes preemption land inside
  critical sections at realistic rates instead of once per 5 ms.  Both
  configurations run under the same interval, so the comparison stays
  paired.
* Per-op cost is wall clock over the whole flood (all threads joined),
  messages are 8-byte eager payloads in windows of 64 outstanding.
* **Contention metrics travel with every trial** — per-message
  channel-lock wait time (from the engine's ``lock_wait_us`` histogram)
  and futile probe wakeups (probers woken by stores that were not for
  them).  On a single-core host the GIL serializes the interpreter work
  either way, so throughput ratios hover near 1.0; the contention
  columns are the honest single-core proxy for the multicore speedup
  (time threads would have spent convoying on the shared engine's
  locks).  See ``docs/performance.md`` for the full analysis.
"""

from __future__ import annotations

import os
import statistics
import sys
import threading
import time
from typing import Any, Callable, Optional

import numpy as np

from repro.buffer import Buffer
from repro.xdev.endpoints import route_of

#: Thread counts swept by the committed bench.
DEFAULT_THREADS = [1, 2, 4, 8]

#: Outstanding isend/irecv requests per worker before waiting.
WINDOW = 64

#: The timed flood runs with a 100 µs interpreter switch interval so
#: preemption behaves like a preemptive multicore scheduler's.
SWITCH_INTERVAL_S = 1e-4

_CONTEXT = 0


def _pick_tags(nthreads: int, endpoints: int) -> list[int]:
    """One tag per worker pair, each routed to its own shard.

    Searches tags until worker ``k`` gets ``route % endpoints ==
    k % endpoints`` — with ``endpoints == nthreads`` every pair owns a
    shard outright.
    """
    tags = []
    for k in range(nthreads):
        tag = k * 1000 + 1
        while route_of(_CONTEXT, tag) % endpoints != k % endpoints:
            tag += 1
        tags.append(tag)
    return tags


def _make_smdev_job(endpoints: int) -> tuple[list[Any], list[Any]]:
    """A two-rank smdev job with an explicit endpoint count."""
    from repro.xdev import new_instance
    from repro.xdev.device import DeviceConfig
    from repro.xdev.smdev import SMFabric

    fabric = SMFabric(2, endpoints=endpoints)
    devices = [new_instance("smdev") for _ in range(2)]
    for rank, dev in enumerate(devices):
        dev.init(DeviceConfig(rank=rank, nprocs=2, fabric=fabric))
    return devices, fabric.pids


def _flood_trial(
    endpoints: int, nthreads: int, msgs_per_thread: int, probe: bool = False
) -> dict[str, float]:
    """One timed flood; returns rate plus per-message contention costs.

    ``probe=True`` switches receivers to the blocking
    probe-then-receive idiom (the variable-size receive pattern):
    ``probe(src, tag)`` then ``recv``.  This is where the shared
    engine's one arrival ticker thunders — every store wakes every
    blocked prober — while per-shard tickers wake only the pair the
    message belongs to.
    """
    devices, pids = _make_smdev_job(endpoints)
    tags = _pick_tags(nthreads, endpoints)
    payload = np.arange(1, dtype=np.int64)
    barrier = threading.Barrier(2 * nthreads + 1)
    errors: list[BaseException] = []

    def sender(t: int) -> None:
        try:
            dev = devices[0]
            dev.engine.bind_endpoint(t % endpoints)
            tag = tags[t]
            barrier.wait()
            done = 0
            while done < msgs_per_thread:
                n = min(WINDOW, msgs_per_thread - done)
                reqs = []
                for _ in range(n):
                    sbuf = Buffer()
                    sbuf.write(payload)
                    reqs.append(dev.isend(sbuf, pids[1], tag, _CONTEXT))
                for r in reqs:
                    r.wait()
                done += n
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    def receiver(t: int) -> None:
        try:
            dev = devices[1]
            dev.engine.bind_endpoint(t % endpoints)
            tag = tags[t]
            barrier.wait()
            if probe:
                for _ in range(msgs_per_thread):
                    dev.probe(pids[0], tag, _CONTEXT)
                    dev.recv(Buffer(), pids[0], tag, _CONTEXT)
                return
            done = 0
            while done < msgs_per_thread:
                n = min(WINDOW, msgs_per_thread - done)
                reqs = [
                    (dev.irecv(Buffer(), pids[0], tag, _CONTEXT))
                    for _ in range(n)
                ]
                for r in reqs:
                    r.wait()
                done += n
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    threads = [
        threading.Thread(target=sender, args=(t,), daemon=True)
        for t in range(nthreads)
    ] + [
        threading.Thread(target=receiver, args=(t,), daemon=True)
        for t in range(nthreads)
    ]
    for th in threads:
        th.start()
    old_interval = sys.getswitchinterval()
    sys.setswitchinterval(SWITCH_INTERVAL_S)
    try:
        barrier.wait()
        t0 = time.perf_counter()
        for th in threads:
            th.join()
        elapsed = time.perf_counter() - t0
        total_msgs = nthreads * msgs_per_thread
        lock_wait_us = sum(
            d.engine._h_lock_wait.snapshot()["sum"] for d in devices
        )
        pstats = [dict(d.engine._matcher.probe_stats) for d in devices]
        futile = sum(p["futile_wakeups"] for p in pstats)
    finally:
        sys.setswitchinterval(old_interval)
        for dev in devices:
            dev.finish()
    if errors:
        raise RuntimeError(f"flood worker failed: {errors[0]!r}") from errors[0]
    return {
        "rate_per_s": total_msgs / max(elapsed, 1e-9),
        "lock_wait_us_per_msg": lock_wait_us / total_msgs,
        "futile_wakeups_per_msg": futile / total_msgs,
    }


def run_threads_bench(
    threads_list: Optional[list[int]] = None,
    quick: bool = False,
    rounds: Optional[int] = None,
    msgs_per_thread: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> dict[str, Any]:
    """The full sweep; returns the ``BENCH_threads.json`` payload."""
    threads_list = threads_list or DEFAULT_THREADS
    rounds = rounds if rounds is not None else (3 if quick else 5)
    msgs = msgs_per_thread if msgs_per_thread is not None else (
        400 if quick else 2000
    )
    say = progress or (lambda msg: None)

    def _side(trials: list[dict[str, float]], endpoints: int) -> dict[str, Any]:
        return {
            "endpoints": endpoints,
            "rates_per_s": [round(t["rate_per_s"], 1) for t in trials],
            "median_rate_per_s": round(
                statistics.median(t["rate_per_s"] for t in trials), 1
            ),
            "median_lock_wait_us_per_msg": round(
                statistics.median(t["lock_wait_us_per_msg"] for t in trials), 3
            ),
            "median_futile_wakeups_per_msg": round(
                statistics.median(t["futile_wakeups_per_msg"] for t in trials),
                4,
            ),
        }

    def _reduction(pairs: list[tuple[float, float]]) -> Optional[float]:
        """Median of single/sharded cost ratios over finite pairs.

        A pair where the sharded side paid zero has no finite ratio —
        both-zero pairs contribute 1.0, single-only-zero pairs are
        dropped (the per-side medians still show the raw costs).
        Returns None when no pair yields a ratio.
        """
        ratios = [
            one / n if n > 0 else 1.0
            for n, one in pairs
            if n > 0 or one == 0
        ]
        return round(statistics.median(ratios), 2) if ratios else None

    modes: dict[str, Any] = {}
    for mode in ("flood", "probe"):
        use_probe = mode == "probe"
        cells: dict[str, Any] = {}
        for nthreads in threads_list:
            sharded_eps = max(nthreads, 2)
            sharded: list[dict[str, float]] = []
            single: list[dict[str, float]] = []
            rate_ratios: list[float] = []
            for rnd in range(rounds):
                trial_n = _flood_trial(
                    sharded_eps, nthreads, msgs, probe=use_probe
                )
                trial_1 = _flood_trial(1, nthreads, msgs, probe=use_probe)
                sharded.append(trial_n)
                single.append(trial_1)
                rate_ratios.append(
                    trial_n["rate_per_s"] / trial_1["rate_per_s"]
                )
                say(
                    f"{mode} threads={nthreads} round {rnd + 1}/{rounds}: "
                    f"sharded={trial_n['rate_per_s']:,.0f}/s "
                    f"single={trial_1['rate_per_s']:,.0f}/s "
                    f"ratio={rate_ratios[-1]:.2f} "
                    f"lock-wait {trial_n['lock_wait_us_per_msg']:.1f}/"
                    f"{trial_1['lock_wait_us_per_msg']:.1f} µs/msg"
                )
            cell = {
                "sharded": _side(sharded, sharded_eps),
                "single": _side(single, 1),
                "rate_ratios": [round(r, 3) for r in rate_ratios],
                "rate_ratio_median": round(statistics.median(rate_ratios), 3),
            }
            # Contention reductions: how much lock-wait / futile-wakeup
            # cost the single-endpoint engine pays per message relative
            # to the sharded one (paired per round, medians of ratios).
            cell["lock_wait_reduction"] = _reduction(
                [
                    (n["lock_wait_us_per_msg"], one["lock_wait_us_per_msg"])
                    for n, one in zip(sharded, single)
                ]
            )
            cell["futile_wakeup_reduction"] = _reduction(
                [
                    (
                        n["futile_wakeups_per_msg"],
                        one["futile_wakeups_per_msg"],
                    )
                    for n, one in zip(sharded, single)
                ]
            )
            cells[str(nthreads)] = cell
        modes[mode] = cells

    return {
        "bench": "threads",
        "device": "smdev",
        "cpus": os.cpu_count(),
        "message_bytes": 8,
        "window": WINDOW,
        "msgs_per_thread": msgs,
        "rounds": rounds,
        "switch_interval_s": SWITCH_INTERVAL_S,
        "methodology": (
            "per round: sharded (endpoints=max(T,2), one tag-routed shard "
            "per worker pair) and single-endpoint (endpoints=1) floods on "
            "fresh jobs, interleaved; headline speedups are medians of "
            "per-round paired ratios; 'probe' mode uses blocking "
            "probe-then-recv receivers, 'flood' uses windowed irecv"
        ),
        "limitations": (
            "on a single-core host the GIL serializes the ~90 µs of "
            "interpreter work per message, so aggregate throughput ratios "
            "sit near 1.0 regardless of lock granularity; the sharding win "
            "shows up in the contention metrics (per-message channel-lock "
            "wait and futile probe wakeups), which translate to throughput "
            "on multicore hosts"
        ),
        "modes": modes,
    }
