"""ASCII line plots for regenerated figures — no plotting deps needed.

`python -m repro.bench --plot FIG11` draws the figure in the terminal:
log-x (message size), linear-y, one glyph per library.  Good enough to
eyeball the shapes the paper's plots show — the 128 KB dip, mpijava's
Myrinet knee, the bandwidth plateaus.
"""

from __future__ import annotations

import math

from repro.bench.figures import FigureSeries

GLYPHS = "*+xo#@%&"


def _fmt(value: float) -> str:
    if value >= 1000:
        return f"{value:8.0f}"
    if value >= 1:
        return f"{value:8.1f}"
    return f"{value:8.3f}"


def _size_label(nbytes: int) -> str:
    if nbytes >= 1 << 20:
        return f"{nbytes >> 20}M"
    if nbytes >= 1 << 10:
        return f"{nbytes >> 10}K"
    return str(nbytes)


def ascii_plot(
    fig: FigureSeries,
    width: int = 72,
    height: int = 20,
    log_y: bool = False,
) -> str:
    """Render the figure as an ASCII chart with a legend."""
    names = list(fig.series)
    all_values = [v for series in fig.series.values() for v in series]
    lo, hi = min(all_values), max(all_values)
    if log_y:
        lo, hi = math.log10(max(lo, 1e-12)), math.log10(max(hi, 1e-12))
    if hi <= lo:
        hi = lo + 1.0

    # x positions: log2(size), scaled to the canvas width.
    xs = [math.log2(s) for s in fig.sizes]
    x_lo, x_hi = xs[0], xs[-1] if xs[-1] > xs[0] else xs[0] + 1

    canvas = [[" "] * width for _ in range(height)]
    for gi, name in enumerate(names):
        glyph = GLYPHS[gi % len(GLYPHS)]
        for x_val, y_val in zip(xs, fig.series[name]):
            y = math.log10(max(y_val, 1e-12)) if log_y else y_val
            col = round((x_val - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y - lo) / (hi - lo) * (height - 1))
            canvas[height - 1 - row][col] = glyph

    top = 10 ** hi if log_y else hi
    bottom = 10 ** lo if log_y else lo
    lines = [f"{fig.title}  [{fig.ylabel}]"]
    for i, row in enumerate(canvas):
        label = _fmt(top) if i == 0 else (_fmt(bottom) if i == height - 1 else " " * 8)
        lines.append(f"{label} |{''.join(row)}|")
    axis = f"{'':8} +{'-' * width}+"
    lines.append(axis)
    left, right = _size_label(fig.sizes[0]), _size_label(fig.sizes[-1])
    lines.append(f"{'':10}{left}{' ' * (width - len(left) - len(right))}{right}")
    lines.append("")
    for gi, name in enumerate(names):
        lines.append(f"  {GLYPHS[gi % len(GLYPHS)]}  {name}")
    return "\n".join(lines)
