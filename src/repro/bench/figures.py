"""Generators for Figures 10-15: the paper's six evaluation plots.

Each generator returns a :class:`FigureSeries` holding, per messaging
system, the x-axis (message sizes in bytes) and the y series (transfer
time in µs, or throughput in Mbps).  Series are produced by the
event-driven ping-pong over the calibrated library models — the
modified-benchmark configuration (no polling jitter), which is what
the paper's own figures used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.netsim.libraries import LibraryModel, libraries_for
from repro.netsim.pingpong import MESSAGE_SIZES, sweep


@dataclass
class FigureSeries:
    """One regenerated figure: per-library series over message sizes."""

    figure_id: str
    title: str
    ylabel: str
    sizes: tuple[int, ...]
    #: library name -> y values (same length as sizes)
    series: dict[str, list[float]] = field(default_factory=dict)

    def library(self, name: str) -> list[float]:
        return self.series[name]

    def at_size(self, name: str, nbytes: int) -> float:
        return self.series[name][self.sizes.index(nbytes)]

    def to_csv(self) -> str:
        """The figure as CSV (size column + one column per library),
        ready for external plotting tools."""
        names = list(self.series)
        lines = [",".join(["size_bytes"] + names)]
        for i, size in enumerate(self.sizes):
            row = [str(size)] + [f"{self.series[n][i]:.6g}" for n in names]
            lines.append(",".join(row))
        return "\n".join(lines)


def _figure(
    figure_id: str,
    title: str,
    fabric: str,
    ylabel: str,
    value: Callable[[LibraryModel, int, float], float],
    sizes: Sequence[int] = MESSAGE_SIZES,
) -> FigureSeries:
    libs = libraries_for(fabric)
    fig = FigureSeries(figure_id, title, ylabel, tuple(sizes))
    for name, lib in libs.items():
        rows = sweep(lib, sizes=sizes, polling=False)
        fig.series[name] = [value(lib, n, t) for (n, t, _bw) in rows]
    return fig


def _us(_lib: LibraryModel, _n: int, t: float) -> float:
    return t * 1e6


def _mbps(_lib: LibraryModel, n: int, t: float) -> float:
    return (n * 8.0) / t / 1e6


#: Transfer-time figures plot the small/medium range; throughput
#: figures emphasise the large-message range (as in the paper's axes).
_TT_SIZES = tuple(s for s in MESSAGE_SIZES if s <= 16 * 1024)
_BW_SIZES = tuple(s for s in MESSAGE_SIZES if s >= 1024)


def figure10_transfer_time_fast_ethernet() -> FigureSeries:
    """Fig. 10: transfer time comparison on Fast Ethernet."""
    return _figure(
        "FIG10", "Transfer Time Comparison on Fast Ethernet",
        "FastEthernet", "Time (us)", _us, sizes=_TT_SIZES,
    )


def figure11_throughput_fast_ethernet() -> FigureSeries:
    """Fig. 11: throughput comparison on Fast Ethernet."""
    return _figure(
        "FIG11", "Throughput Comparison on Fast Ethernet",
        "FastEthernet", "Bandwidth (Mbps)", _mbps, sizes=_BW_SIZES,
    )


def figure12_transfer_time_gigabit() -> FigureSeries:
    """Fig. 12: transfer time comparison on Gigabit Ethernet."""
    return _figure(
        "FIG12", "Transfer Time Comparison on Gigabit Ethernet",
        "GigabitEthernet", "Time (us)", _us, sizes=_TT_SIZES,
    )


def figure13_throughput_gigabit() -> FigureSeries:
    """Fig. 13: throughput comparison on Gigabit Ethernet."""
    return _figure(
        "FIG13", "Throughput Comparison on Gigabit Ethernet",
        "GigabitEthernet", "Bandwidth (Mbps)", _mbps, sizes=_BW_SIZES,
    )


def figure14_transfer_time_myrinet() -> FigureSeries:
    """Fig. 14: transfer time comparison on Myrinet."""
    return _figure(
        "FIG14", "Transfer Time Comparison on Myrinet",
        "Myrinet2G", "Time (us)", _us, sizes=_TT_SIZES,
    )


def figure15_throughput_myrinet() -> FigureSeries:
    """Fig. 15: throughput comparison on Myrinet."""
    return _figure(
        "FIG15", "Throughput Comparison on Myrinet",
        "Myrinet2G", "Bandwidth (Mbps)", _mbps, sizes=_BW_SIZES,
    )


def figure_pingpong_variability(
    runs: int = 12, samples: int = 8, fabric: str = "FastEthernet",
    library: str = "MPICH",
) -> FigureSeries:
    """VAR: naive vs modified ping-pong run-to-run spread by size.

    Not a numbered figure in the paper (the authors "omit the details
    ... and plan to present it in a separate publication"), but the
    effect behind their benchmark methodology, regenerated: for each
    message size, the standard deviation across independent runs of
    the naive estimator versus the paper's random-delay estimator.
    """
    import statistics

    from repro.netsim.pingpong import PingPong

    lib = libraries_for(fabric)[library]
    sizes = tuple(s for s in MESSAGE_SIZES if s <= 64 * 1024)
    fig = FigureSeries(
        "VAR",
        f"Ping-pong estimator spread on {fabric} ({library})",
        "run-to-run std dev (us)",
        sizes,
    )
    naive_series, modified_series = [], []
    for nbytes in sizes:
        naive_means, modified_means = [], []
        for seed in range(runs):
            naive = PingPong(lib, polling=True, seed=seed)
            naive_means.append(
                statistics.mean(naive.measure_naive(nbytes, samples))
            )
            modified = PingPong(lib, polling=True, seed=seed)
            modified_means.append(
                statistics.mean(modified.measure_modified(nbytes, samples * 3))
            )
        naive_series.append(statistics.stdev(naive_means) * 1e6)
        modified_series.append(statistics.stdev(modified_means) * 1e6)
    fig.series["naive ping-pong"] = naive_series
    fig.series["modified (random delay)"] = modified_series
    return fig


FIGURES: dict[str, Callable[[], FigureSeries]] = {
    "FIG10": figure10_transfer_time_fast_ethernet,
    "FIG11": figure11_throughput_fast_ethernet,
    "FIG12": figure12_transfer_time_gigabit,
    "FIG13": figure13_throughput_gigabit,
    "FIG14": figure14_transfer_time_myrinet,
    "FIG15": figure15_throughput_myrinet,
    "VAR": figure_pingpong_variability,
}
