"""Thousand-rank scale-out benchmark: the lazy-connection proof.

``python -m repro.bench --scaleout`` runs a barrier + small Allgatherv
job over niodev at 128/256/512/1024 thread-ranks on one host and
reports, per size, what the connection economy actually did — peak
open channels, dials, evictions, redials (all read from each rank's
obs registry, never estimated) alongside process-wide file-descriptor
samples from ``/proc/self/fd``.  The committed ``BENCH_scaleout.json``
at the repo root is one such run.

The eager era's ``_connect_all`` opened 2·n·(n−1) sockets job-wide
before any message moved — 2 M sockets at 1024 ranks, far past any
RLIMIT_NOFILE.  The lazy cache bounds per-rank channels by
``min(budget, distinct peers actually messaged)``; for this workload
the dissemination barrier talks to ⌈log₂ n⌉ peers and the
gather+bcast Allgatherv adds the root, so the *per-rank* working set
is ~log n and the job-wide connection count grows as n·log n — the
``conn_per_rank`` column printing ~log n while ``2·(n−1)`` explodes is
the sublinearity claim, measured.

Per-size FD budgets exercise both cache regimes:

* **budget above the working set** (128–512 ranks, budget = n/2): no
  eviction churn, the cache is a plain lazy table;
* **budget below the working set** (1024 ranks, budget = 4 < log₂ n
  + 1): every rank constantly evicts and re-dials, proving the
  graceful-eviction path at scale — and keeping worst-case job FDs
  (2 FDs per intra-process connection) far under the host's
  RLIMIT_NOFILE.

Methodology notes: thread-ranks share one process, so ``/proc/self/fd``
covers the whole job; ``fd_final`` returning to ``fd_baseline`` after
Finalize is the leak check CI asserts.  On a single core the wall
times are GIL-bound and only the *connection* columns are the
benchmark's claim.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Optional

import numpy as np

from repro import mpi
from repro.runtime.launcher import run_spmd

#: Rank counts swept by the committed bench.
DEFAULT_SIZES = [128, 256, 512, 1024]
QUICK_SIZES = [32, 64, 128]

#: Per-size connection-cache budget (see module docstring).
BUDGETS = {32: 16, 64: 32, 128: 64, 256: 128, 512: 256, 1024: 4}

#: Whole-job timeout per size; 1024 GIL-bound thread-ranks on one core
#: need room.
JOB_TIMEOUT = 900.0


def fd_count() -> int:
    """Open file descriptors in this process (−1 where /proc is absent)."""
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:  # pragma: no cover - non-Linux
        return -1


class _FdSampler(threading.Thread):
    """Samples ``/proc/self/fd`` while a job runs; keeps the max."""

    def __init__(self, interval: float = 0.05) -> None:
        super().__init__(name="fd-sampler", daemon=True)
        self.peak = fd_count()
        self.interval = interval
        # NB: not named _stop — threading.Thread owns that attribute.
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.is_set():
            self.peak = max(self.peak, fd_count())
            self._halt.wait(self.interval)

    def stop(self) -> int:
        self._halt.set()
        self.join(timeout=5)
        self.peak = max(self.peak, fd_count())
        return self.peak


def _workload(env) -> dict[str, Any]:
    """One rank's work: barrier, tiny Allgatherv, barrier, then report
    this rank's connection economy from its obs registry."""
    comm = env.COMM_WORLD
    n = comm.size()
    rank = comm.rank()

    t0 = time.monotonic()
    comm.Barrier()
    barrier_s = time.monotonic() - t0

    mine = np.full(1, rank, dtype=np.int32)
    recv = np.zeros(n, dtype=np.int32)
    counts = [1] * n
    displs = list(range(n))
    t0 = time.monotonic()
    comm.Allgatherv(mine, 0, 1, mpi.INT, recv, 0, counts, displs, mpi.INT)
    allgatherv_s = time.monotonic() - t0
    if not np.array_equal(recv, np.arange(n, dtype=np.int32)):
        raise AssertionError(f"rank {rank}: allgatherv result corrupt: {recv}")

    comm.Barrier()

    snap = env.device.engine.metrics.snapshot()
    counters = snap.get("counters", {})
    gauges = snap.get("gauges", {})
    return {
        "barrier_s": barrier_s,
        "allgatherv_s": allgatherv_s,
        # The obs registry is the source of truth for every connection
        # number in the committed JSON.
        "connects": counters.get("net.connects_total", 0),
        "evictions": counters.get("net.evictions_total", 0),
        "redials": counters.get("net.redials_total", 0),
        "connect_errors": counters.get("net.connect_errors_total", 0),
        "open": gauges.get("net.connections_open", 0),
        "peak": gauges.get("net.connections_peak", 0),
        "budget": gauges.get("net.fd_budget", 0),
    }


def _run_size(nprocs: int, budget: int) -> dict[str, Any]:
    fd_baseline = fd_count()
    sampler = _FdSampler()
    sampler.start()
    t0 = time.monotonic()
    per_rank = run_spmd(
        _workload,
        nprocs,
        device="niodev",
        options={"fd_budget": budget},
        timeout=JOB_TIMEOUT,
    )
    wall_s = time.monotonic() - t0
    fd_peak = sampler.stop()
    fd_final = fd_count()

    peaks = [r["peak"] for r in per_rank]
    total_connects = sum(r["connects"] for r in per_rank)
    row = {
        "nprocs": nprocs,
        "fd_budget": budget,
        "wall_s": round(wall_s, 3),
        "barrier_max_s": round(max(r["barrier_s"] for r in per_rank), 3),
        "allgatherv_max_s": round(max(r["allgatherv_s"] for r in per_rank), 3),
        # Connection economy (obs registry numbers, summed/maxed over ranks).
        "connects_total": total_connects,
        "evictions_total": sum(r["evictions"] for r in per_rank),
        "redials_total": sum(r["redials"] for r in per_rank),
        "connect_errors_total": sum(r["connect_errors"] for r in per_rank),
        "peak_channels_per_rank_max": max(peaks),
        "peak_channels_per_rank_mean": round(sum(peaks) / len(peaks), 2),
        "open_after_job": sum(r["open"] for r in per_rank),
        # What the eager all-to-all era would have opened, for the
        # sublinearity comparison column.
        "eager_era_connections": 2 * nprocs * (nprocs - 1),
        # Process-wide FD truth (thread-ranks share this process).
        "fd_baseline": fd_baseline,
        "fd_peak": fd_peak,
        "fd_final": fd_final,
    }
    return row


def run_scaleout_bench(
    quick: bool = False,
    sizes: Optional[list[int]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> dict[str, Any]:
    """The ``--scaleout`` entry point; returns the committed JSON shape."""
    say = progress or (lambda _msg: None)
    chosen = sizes or (QUICK_SIZES if quick else DEFAULT_SIZES)
    rows = []
    for nprocs in chosen:
        budget = BUDGETS.get(nprocs, max(4, nprocs // 2))
        say(f"scaleout: {nprocs} ranks (fd_budget={budget}) ...")
        row = _run_size(nprocs, budget)
        say(
            f"scaleout: {nprocs} ranks done in {row['wall_s']}s — "
            f"{row['connects_total']} dials, "
            f"peak {row['peak_channels_per_rank_max']} ch/rank, "
            f"fd peak {row['fd_peak']}"
        )
        rows.append(row)
    return {
        "bench": "scaleout",
        "device": "niodev",
        "workload": "Barrier + Allgatherv(int32 x1/rank) + Barrier",
        "budgets": {str(n): BUDGETS.get(n, max(4, n // 2)) for n in chosen},
        "quick": quick,
        "rows": rows,
    }
