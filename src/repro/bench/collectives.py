"""Live collective benchmarks and the offline decision-table tuner.

Two entry points over the real device stack (not netsim):

``run_collectives_bench`` — the committed ``BENCH_collectives.json``:
for each (collective, size) cell it times the automatic selection
(:mod:`repro.mpi.tuning`), the seed default (every collective pinned
to its built-in algorithm *and* zero-copy window routing disabled —
the full pre-change behaviour), and every manual algorithm, then
reports how the auto pick compares to both.  Large-cell auto runs also report the devices'
:class:`~repro.buffer.pool.CopyStats` so the zero-copy claim for the
collective datapath is checkable from the JSON alone.

``tune_collectives`` — ``python -m repro.bench tune-coll``: sweeps
every algorithm across a size grid, picks the per-size winner, and
folds runs of identical winners into the threshold rules of a
``repro-coll-tuning-v1`` decision table (load it back with
``REPRO_COLL_TUNING=<file>``).

Methodology matches the ping-pong bench: per-op time is wall clock
over the iteration loop, the slowest rank's time per trial (a
collective is only done when everyone is done), best of three trials;
copy counters cover exactly the best trial's timed window, summed over
all ranks.  On top of that, every variant of a cell is timed inside
the same jobs on dup()ed communicators with interleaved trials —
variant-to-variant comparisons share thread placement, which on an
8-threads-in-one-process device matters more than anything the
algorithms do.
"""

from __future__ import annotations

import time
from typing import Any, Optional

import numpy as np

from repro.runtime.launcher import run_spmd

#: The committed bench grid: one latency-bound and one bandwidth-bound
#: cell per tunable collective family exercised by the BENCH file.
DEFAULT_SIZES = [1024, 1 << 20]
DEFAULT_COLLECTIVES = ["allreduce", "bcast", "gather", "reduce_scatter", "allgatherv"]
DEFAULT_NPROCS = 8

#: The tuner's finer size grid (crossovers live between these points).
TUNE_SIZES = [1024, 16 * 1024, 64 * 1024, 128 * 1024, 256 * 1024, 1 << 20]


def _iters_for(nbytes: int, quick: bool) -> int:
    budget = 2 << 20 if quick else 32 << 20
    iters = max(1, budget // max(nbytes, 1))
    # Small cells need long timed windows: a sub-ms op measured over a
    # few dozen iterations is thread-wake jitter, not the algorithm.
    cap = 5 if quick else (200 if nbytes <= 16384 else 50)
    return min(iters, cap)


def _seed_pins() -> dict[str, str]:
    """Pin every collective to its built-in default (seed behaviour)."""
    from repro.mpi import algorithms

    return dict(algorithms.DEFAULTS)


def _make_op(comm, collective, nbytes):
    """Build the per-iteration closure for one variant's communicator."""
    from repro.mpi.op import SUM

    rank, size = comm.rank(), comm.size()
    n = max(size, nbytes // 8)
    n -= n % size  # uniform blocks for the vector collectives
    blk = n // size
    send = np.arange(n, dtype=np.float64) + rank
    recv = np.empty(n, dtype=np.float64)
    small = np.empty(blk, dtype=np.float64)
    counts = [blk] * size
    displs = [i * blk for i in range(size)]

    if collective == "allreduce":
        def op():
            comm.Allreduce(send, 0, recv, 0, n, None, SUM)
    elif collective == "bcast":
        def op():
            comm.Bcast(send, 0, n, None, 0)
    elif collective == "gather":
        def op():
            comm.Gather(send, 0, blk, None, recv, 0, blk, None, 0)
    elif collective == "reduce":
        def op():
            comm.Reduce(send, 0, recv, 0, n, None, SUM, 0)
    elif collective == "scatter":
        def op():
            comm.Scatter(send, 0, blk, None, small, 0, blk, None, 0)
    elif collective == "allgather":
        def op():
            comm.Allgather(send, 0, blk, None, recv, 0, blk, None)
    elif collective == "reduce_scatter":
        def op():
            comm.Reduce_scatter(send, 0, small, 0, counts, None, SUM)
    elif collective == "allgatherv":
        def op():
            comm.Allgatherv(send, rank * blk, blk, None, recv, 0, counts, displs, None)
    else:
        raise ValueError(f"unknown bench collective {collective!r}")
    return op


def _cell_worker(env, collective, nbytes, iters, trials, variants):
    """One rank of a timed cell; times every variant in this one job.

    *variants* is ``[(name, pins, windows), ...]``.  Each variant gets
    its own dup()ed communicator carrying its pins (and, for the seed
    baseline, the window kill-switch), and the variants interleave
    trial-by-trial — every variant sees the same thread placement and
    the same phases of the job's lifetime, so variant-to-variant
    comparisons are tight instead of being dominated by between-job
    scheduling luck.
    """
    from repro.mpi.op import MAX

    world = env.COMM_WORLD
    ops: dict[str, Any] = {}
    for name, pins, windows in variants:
        comm = world.dup()
        for coll, algo in (pins or {}).items():
            comm.set_collective_algorithm(coll, algo)
        if not windows:
            comm._coll_windows = False  # pre-change packed datapath
        ops[name] = _make_op(comm, collective, nbytes)

    for name, _pins, _windows in variants:
        ops[name]()  # warmup (protocol setup, buffer pool, caches)

    copy_stats = env.device.engine.copy_stats
    best: dict[str, float] = {}
    best_copy: dict[str, dict[str, int]] = {}
    agree = np.empty(1, dtype=np.float64)
    for trial in range(trials):
        # Rotate the variant order each trial: the first variant after a
        # barrier pays any thread-rescheduling settle cost, and with a
        # fixed order that penalty lands on one variant systematically.
        shift = trial % len(variants)
        for name, _pins, _windows in variants[shift:] + variants[:shift]:
            world.Barrier()
            copy_stats.reset()
            t0 = time.perf_counter()
            for _i in range(iters):
                ops[name]()
            elapsed = time.perf_counter() - t0
            snap = copy_stats.snapshot()
            # A collective finishes when its slowest rank does.
            world.Allreduce(np.array([elapsed]), 0, agree, 0, 1, None, MAX)
            trial_time = float(agree[0])
            if name not in best or trial_time < best[name]:
                best[name] = trial_time
                best_copy[name] = snap
    return {
        name: {"time_s": best[name] / iters, "copy_stats": best_copy[name]}
        for name, _pins, _windows in variants
    }


def measure_cell_variants(
    collective: str,
    nbytes: int,
    nprocs: int,
    variants: list[tuple[str, Optional[dict[str, str]], bool]],
    device: str = "smdev",
    iters: int = 20,
    trials: int = 3,
    rounds: int = 1,
) -> dict[str, dict[str, Any]]:
    """Time one cell's variants; all variants share each job.

    *trials* interleave the variants within one job; *rounds* repeats
    the whole job (fresh devices and threads).  Returns, per variant,
    the per-op time minimum over rounds, the full per-round series
    (``rounds_us``, for paired comparisons), and the copy stats of the
    best trial summed over ranks.
    """
    out: dict[str, dict[str, Any]] = {}
    for _ in range(max(1, rounds)):
        results = run_spmd(
            _cell_worker,
            nprocs,
            device=device,
            args=(collective, nbytes, iters, trials, variants),
            timeout=300.0,
        )
        for name, _pins, _windows in variants:
            time_s = max(r[name]["time_s"] for r in results)
            copy: dict[str, int] = {}
            for r in results:
                for k, v in r[name]["copy_stats"].items():
                    copy[k] = copy.get(k, 0) + v
            time_us = round(time_s * 1e6, 2)
            cell = out.setdefault(
                name, {"time_us": time_us, "copy_stats": copy, "rounds_us": []}
            )
            cell["rounds_us"].append(time_us)
            if time_us < cell["time_us"]:
                cell["time_us"] = time_us
                cell["copy_stats"] = copy
    return out


def measure_collective(
    collective: str,
    nbytes: int,
    nprocs: int,
    device: str = "smdev",
    pins: Optional[dict[str, str]] = None,
    iters: int = 20,
    trials: int = 3,
    rounds: int = 1,
    windows: bool = True,
) -> dict[str, Any]:
    """Time one collective configuration (single-variant convenience).

    ``windows=False`` disables the zero-copy collective window path,
    measuring the packed datapath the seed code used.
    """
    cells = measure_cell_variants(
        collective,
        nbytes,
        nprocs,
        [("cell", pins, windows)],
        device=device,
        iters=iters,
        trials=trials,
        rounds=rounds,
    )
    cell = cells["cell"]
    return {"time_us": cell["time_us"], "copy_stats": cell["copy_stats"]}


def _selected_algorithm(collective: str, nbytes: int, nprocs: int) -> str:
    """The algorithm auto-selection will pick (it is deterministic)."""
    from repro.mpi import algorithms, tuning

    return tuning.select(collective, nbytes, nprocs) or algorithms.DEFAULTS[collective]


def run_collectives_bench(
    collectives: Optional[list[str]] = None,
    sizes: Optional[list[int]] = None,
    nprocs: int = DEFAULT_NPROCS,
    device: str = "smdev",
    quick: bool = False,
    progress=None,
) -> dict[str, Any]:
    """The full cell sweep, as the JSON-ready result dict.

    ``REPRO_BENCH_COLLECTIVES=allreduce,bcast`` restricts the default
    cell set (CI smoke uses this to keep the job short).
    """
    import os

    from repro.mpi import algorithms

    if collectives is None:
        env = os.environ.get("REPRO_BENCH_COLLECTIVES", "").strip()
        if env:
            collectives = [c for c in env.split(",") if c]
    collectives = collectives or list(DEFAULT_COLLECTIVES)
    sizes = sizes or list(DEFAULT_SIZES)
    out: dict[str, Any] = {
        "benchmark": "collectives",
        "generated_by": "python -m repro.bench --json --collectives",
        "methodology": (
            "per-op time = slowest rank's wall clock / iterations, best "
            "of 3 trials; all variants of a cell run inside the same "
            "jobs on dup()ed communicators, interleaved trial-by-trial "
            "(shared thread placement), over 3 rounds of fresh jobs; "
            "reported times are per-variant minima, comparison "
            "percentages are medians of round-paired ratios (pairing "
            "cancels machine-load drift between rounds).  auto = "
            "decision-table selection on the "
            "zero-copy window datapath; seed_default = every "
            "collective pinned to its built-in default with window "
            "routing disabled (the full pre-change behaviour: default "
            "algorithms over the packed copy datapath); manual = one "
            "algorithm pinned, windows on.  copy_stats cover the best "
            "trial's timed window, all ranks summed"
        ),
        "device": device,
        "nprocs": nprocs,
        "cells": {},
    }
    seed = _seed_pins()
    for collective in collectives:
        for nbytes in sizes:
            iters = _iters_for(nbytes, quick)
            rounds = 1 if quick else 3
            key = f"{collective}/{nbytes}"
            if progress is not None:
                progress(f"{key} ({nprocs} ranks, {device})")
            # Every variant of a cell is timed inside the same jobs on
            # dup()ed communicators, interleaved trial-by-trial (see
            # _cell_worker), so variant comparisons share thread
            # placement.  seed_default runs with window routing off:
            # the pre-change code had neither the tuned selection nor
            # the zero-copy collective datapath.
            variants: list[tuple[str, Optional[dict[str, str]], bool]] = [
                ("auto", None, True),
                ("seed_default", seed, False),
            ]
            for algo in sorted(algorithms.REGISTRY[collective]):
                variants.append((f"manual:{algo}", {**seed, collective: algo}, True))
            measured = measure_cell_variants(
                collective,
                nbytes,
                nprocs,
                variants,
                device=device,
                iters=iters,
                # Enough trials that the rotated order (see _cell_worker)
                # puts every variant in every position at least once.
                trials=3 if quick else max(3, len(variants)),
                rounds=rounds,
            )
            manual = {
                name.split(":", 1)[1]: cell["time_us"]
                for name, cell in measured.items()
                if name.startswith("manual:")
            }
            manual_names = [n for n, _p, _w in variants if n.startswith("manual:")]
            # Comparison percentages are medians of ROUND-PAIRED
            # ratios: rounds are fresh jobs, and pairing within a
            # round cancels machine-load drift that min-vs-min would
            # amplify into phantom wins or losses.
            auto_rounds = measured["auto"]["rounds_us"]
            seed_rounds = measured["seed_default"]["rounds_us"]
            vs_seed = _median(
                [(s - a) / s * 100 for a, s in zip(auto_rounds, seed_rounds)]
            )
            vs_best = _median(
                [
                    (auto_rounds[r] - best) / best * 100
                    for r in range(len(auto_rounds))
                    for best in [
                        min(measured[n]["rounds_us"][r] for n in manual_names)
                    ]
                ]
            )
            out["cells"][key] = {
                "auto": {
                    "algorithm": _selected_algorithm(collective, nbytes, nprocs),
                    "time_us": measured["auto"]["time_us"],
                    "copy_stats": measured["auto"]["copy_stats"],
                },
                "seed_default": {"time_us": measured["seed_default"]["time_us"]},
                "manual_us": manual,
                "rounds": rounds,
                "auto_vs_seed_pct": round(vs_seed, 1),
                "auto_vs_best_manual_pct": round(vs_best, 1),
            }
    return out


def _median(xs: list[float]) -> float:
    s = sorted(xs)
    mid = len(s) // 2
    return s[mid] if len(s) % 2 else (s[mid - 1] + s[mid]) / 2


def tune_collectives(
    collectives: Optional[list[str]] = None,
    sizes: Optional[list[int]] = None,
    nprocs: int = DEFAULT_NPROCS,
    device: str = "smdev",
    quick: bool = False,
    progress=None,
):
    """Measure every algorithm across the size grid; emit a DecisionTable.

    For each collective the per-size winners are folded into threshold
    rules: a run of sizes won by the same algorithm becomes one rule
    whose ``max_bytes`` is the geometric midpoint between the last size
    of the run and the first size of the next; the final run is
    unbounded.
    """
    from repro.mpi import algorithms
    from repro.mpi.tuning import DecisionTable, Rule

    collectives = collectives or list(DEFAULT_COLLECTIVES)
    sizes = sorted(sizes or list(TUNE_SIZES))
    seed = _seed_pins()
    tables: dict[str, list[Rule]] = {}
    measurements: dict[str, Any] = {}
    for collective in collectives:
        winners: list[tuple[int, str]] = []
        for nbytes in sizes:
            iters = _iters_for(nbytes, quick)
            if progress is not None:
                progress(f"tune {collective}/{nbytes}")
            # All candidate algorithms share each job (dup()ed comms,
            # interleaved trials) so the winner reflects the algorithm,
            # not between-job scheduling luck.
            variants = [
                (algo, {**seed, collective: algo}, True)
                for algo in sorted(algorithms.REGISTRY[collective])
            ]
            measured = measure_cell_variants(
                collective,
                nbytes,
                nprocs,
                variants,
                device=device,
                iters=iters,
                rounds=1 if quick else 2,
            )
            times = {algo: cell["time_us"] for algo, cell in measured.items()}
            winner = min(times, key=times.get)
            winners.append((nbytes, winner))
            measurements[f"{collective}/{nbytes}"] = times
        rules: list[Rule] = []
        for i, (nbytes, winner) in enumerate(winners):
            nxt = winners[i + 1] if i + 1 < len(winners) else None
            if nxt is not None and nxt[1] == winner:
                continue  # run continues
            if nxt is None:
                rules.append(Rule(winner))
            else:
                cut = int((nbytes * nxt[0]) ** 0.5)
                rules.append(Rule(winner, max_bytes=cut))
        # Collapse a single unbounded rule naming the default: no rule
        # needed, the default already wins.
        if len(rules) == 1 and rules[0].algorithm == algorithms.DEFAULTS[collective]:
            rules = []
        tables[collective] = rules
    return DecisionTable(tables), measurements
