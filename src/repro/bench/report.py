"""Plain-text rendering of regenerated figures and tables."""

from __future__ import annotations

from typing import Sequence

from repro.bench.figures import FigureSeries
from repro.netsim.libraries import libraries_for


def _size_label(nbytes: int) -> str:
    if nbytes >= 1 << 20:
        return f"{nbytes >> 20}M"
    if nbytes >= 1 << 10:
        return f"{nbytes >> 10}K"
    return str(nbytes)


def format_figure(fig: FigureSeries, sizes: Sequence[int] | None = None) -> str:
    """Render a figure's series as a fixed-width table."""
    sizes = list(sizes) if sizes is not None else list(fig.sizes)
    names = list(fig.series)
    width = max(len(n) for n in names) + 2
    header = f"{fig.figure_id}: {fig.title} [{fig.ylabel}]"
    lines = [header, "-" * len(header)]
    size_row = " " * width + "".join(f"{_size_label(s):>10}" for s in sizes)
    lines.append(size_row)
    for name in names:
        values = [fig.at_size(name, s) for s in sizes]
        lines.append(
            f"{name:<{width}}" + "".join(f"{v:>10.1f}" for v in values)
        )
    return "\n".join(lines)


def format_latency_table(fabric: str) -> str:
    """1-byte latency and 16 MB throughput summary for one fabric."""
    libs = libraries_for(fabric)
    lines = [
        f"{fabric}: 1-byte latency and 16 MB throughput",
        f"{'library':<24}{'latency (us)':>14}{'bw@16M (Mbps)':>16}",
    ]
    for name, lib in libs.items():
        lines.append(
            f"{name:<24}{lib.one_way_time(1) * 1e6:>14.1f}"
            f"{lib.bandwidth_mbps(16 << 20):>16.1f}"
        )
    return "\n".join(lines)
