"""Analytic model of the Section V-A qualitative experiment.

The paper measures matrix multiplication running *while 100
ANY_SOURCE receives are outstanding*, and finds MPJ Express 11% faster
than MPJ/Ibis.  The benchmarks reproduce this live
(``benchmarks/test_qualA_anysource.py``); this module reproduces the
*number* analytically, from the structural difference between the two
architectures:

* MPJ Express parks pending receives as entries in the matching sets.
  Zero CPU while waiting; the input-handler thread wakes only when
  bytes actually arrive.
* MPJ/Ibis services each pending receive with its own thread, which
  polls: every ``poll_interval`` it wakes, contends for the lock,
  scans the mailbox, and sleeps again — a context switch plus a scan
  per pending receive per interval, stolen from the computation.

On the paper's dual-CPU nodes the computation owns one CPU outright,
so polling steals only the *excess* beyond what the second CPU
absorbs.  That absorption is why the paper's effect (11%) is much
smaller than what a single-core machine shows.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HostModel:
    """CPU-side parameters of one compute node."""

    #: Number of CPUs (the paper's nodes: dual Xeon).
    cpus: int = 2
    #: Cost of one poll wake-up: context switch + lock + mailbox scan
    #: (~2.5 µs on 2005-era Linux/Xeon).
    poll_cost_s: float = 2.5e-6
    #: GEMM throughput for the matmul (2 GHz-era Xeon, Java): FLOP/s.
    flops: float = 1.2e9


@dataclass(frozen=True)
class OverlapExperiment:
    """The Section V-A workload shape."""

    pending_receives: int = 100
    poll_interval_s: float = 0.001
    matrix_n: int = 3000

    @property
    def matmul_flops(self) -> float:
        return 2.0 * self.matrix_n ** 3


def matmul_time_progress_engine(host: HostModel, exp: OverlapExperiment) -> float:
    """Compute time with parked receives (MPJ Express architecture).

    Pending receives cost nothing while no data arrives.
    """
    return exp.matmul_flops / host.flops


def polling_cpu_share(host: HostModel, exp: OverlapExperiment) -> float:
    """Fraction of one CPU consumed by the polling receive threads."""
    wakes_per_s = exp.pending_receives / exp.poll_interval_s
    return wakes_per_s * host.poll_cost_s


def matmul_time_polling(host: HostModel, exp: OverlapExperiment) -> float:
    """Compute time with polling receives (thread-per-message baseline).

    The polling load is scheduled across all CPUs; the computation runs
    on one.  With ``cpus`` processors, the free capacity besides the
    compute CPU is ``cpus - 1``; polling demand beyond that spills onto
    the compute CPU and stretches the matmul proportionally.
    """
    demand = polling_cpu_share(host, exp)
    spare = host.cpus - 1.0
    # Fair-share scheduling: the compute CPU keeps
    # 1 / (1 + spill) of its cycles for the matmul.
    spill = max(0.0, demand - spare) + min(demand, spare) / host.cpus
    # The second term models scheduler interference (migrations, cache
    # disturbance) even when nominal capacity suffices: a fraction
    # 1/cpus of the absorbed polling work perturbs the compute CPU.
    return matmul_time_progress_engine(host, exp) * (1.0 + spill)


def speedup_percent(host: HostModel, exp: OverlapExperiment) -> float:
    """How much faster the matmul is with the progress-engine design."""
    base = matmul_time_polling(host, exp)
    fast = matmul_time_progress_engine(host, exp)
    return (base - fast) / base * 100.0


#: The paper's testbed: dual-Xeon nodes (Section V).
STARBUG_NODE = HostModel(cpus=2)

#: The published experiment shape (Section V-A).
PAPER_EXPERIMENT = OverlapExperiment()
