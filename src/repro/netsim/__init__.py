"""netsim — the simulated test environment for the paper's evaluation.

The paper measured seven messaging systems on an 8-node Xeon cluster
over three fabrics (Fast Ethernet, Gigabit Ethernet, 2 Gbit Myrinet).
None of those stacks (MPICH 1.2.x, LAM/MPI, mpijava-over-MPI,
MPJ/Ibis, MPICH-MX) nor the fabrics exist here, so — per the
substitution rule — this package rebuilds the *experiment* as a
discrete-event simulation:

* :mod:`repro.netsim.engine` — a minimal event-driven simulator;
* :mod:`repro.netsim.fabrics` — link models (bandwidth, wire latency,
  the NIC driver's 64 µs polling interval the paper calls out);
* :mod:`repro.netsim.libraries` — per-library software cost models
  (per-message overheads, copy stages with cache effects, protocol
  switch points), calibrated against the figures' published numbers;
* :mod:`repro.netsim.pingpong` — the ping-pong benchmark, in both the
  naive form and the paper's *modified* form with random delays that
  defeat NIC-polling quantization (Section V).

What transfers from the real world to the simulation is the paper's
*explanation* of its own numbers: who copies how many times, who pays
JNI, who switches protocol at 128 KB, whose copies fall out of cache.
The simulator turns those explanations into curves; EXPERIMENTS.md
records how closely the shapes match.
"""

from repro.netsim.engine import Event, Simulator
from repro.netsim.fabrics import (
    FABRICS,
    FAST_ETHERNET,
    Fabric,
    GIGABIT_ETHERNET,
    MYRINET_2G,
)
from repro.netsim.libraries import (
    CopyStage,
    LibraryModel,
    fast_ethernet_libraries,
    gigabit_ethernet_libraries,
    libraries_for,
    myrinet_libraries,
)
from repro.netsim.pingpong import (
    MESSAGE_SIZES,
    PingPong,
    bandwidth_mbps,
    sweep,
)
from repro.netsim.collectives import MODELS as COLLECTIVE_MODELS
from repro.netsim.collectives import compare as compare_collectives

__all__ = [
    "COLLECTIVE_MODELS",
    "CopyStage",
    "compare_collectives",
    "Event",
    "FABRICS",
    "FAST_ETHERNET",
    "Fabric",
    "GIGABIT_ETHERNET",
    "LibraryModel",
    "MESSAGE_SIZES",
    "MYRINET_2G",
    "PingPong",
    "Simulator",
    "bandwidth_mbps",
    "fast_ethernet_libraries",
    "gigabit_ethernet_libraries",
    "libraries_for",
    "myrinet_libraries",
    "sweep",
]
