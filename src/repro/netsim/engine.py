"""A minimal discrete-event simulation engine.

Deliberately small: an event is a timestamped callback; the simulator
pops events in time order and runs them until the queue drains.  Ties
break by insertion order, so runs are deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class Event:
    """One scheduled callback."""

    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """Event queue + virtual clock."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self.events_run = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def at(self, time: float, fn: Callable[[], None], label: str = "") -> Event:
        """Schedule *fn* at absolute virtual time *time*."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        event = Event(time, next(self._seq), fn, label)
        heapq.heappush(self._queue, event)
        return event

    def after(self, delay: float, fn: Callable[[], None], label: str = "") -> Event:
        """Schedule *fn* *delay* seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.at(self._now + delay, fn, label)

    def run(self, until: Optional[float] = None) -> float:
        """Run events (optionally only up to time *until*); returns now."""
        while self._queue:
            if until is not None and self._queue[0].time > until:
                break
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_run += 1
            event.fn()
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def pending(self) -> int:
        """Number of queued (uncancelled) events."""
        return sum(1 for e in self._queue if not e.cancelled)
