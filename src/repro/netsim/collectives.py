"""Analytic collective-algorithm models on the simulated cluster.

The paper's testbed — StarBug, 8 dual-Xeon nodes — ran point-to-point
benchmarks only; this module extends the calibrated per-library models
to *collective* completion times, so algorithm choices (see
:mod:`repro.mpi.algorithms`) can be studied at cluster scale without
the cluster.  Every model is expressed in terms of the library's
point-to-point time ``T(m)`` over its fabric, following Hockney-style
analysis:

==========================  ===========================================
Bcast binomial              ceil(log2 p) rounds of T(m)
Bcast linear                p-1 serialized sends from the root
Bcast scatter+allgather     binomial scatter of m/p segments + ring
Bcast/Reduce pipelined      (ceil(log2 p) + nseg - 1) rounds of T(seg)
Reduce binomial             ceil(log2 p) rounds of T(m)
Reduce linear               p-1 serialized receives into the root
Allreduce reduce+bcast      2 x binomial tree of T(m)
Allreduce recursive dbl     ceil(log2 p) exchange rounds of T(m)
Allreduce Rabenseifner      2 x sum_k T(m / 2^k) halving exchanges
Gather/Scatter linear       p-1 serialized block transfers at the root
Gather/Scatter binomial     sum_k T(2^k blocks), k < ceil(log2 p)
Allgather ring              p-1 rounds of T(m_block)
Allgather gather+bcast      linear gather + binomial bcast of p*m_block
Allgatherv ring             p-1 rounds of T(m / p)
Allgatherv gather+bcast     linear gatherv + binomial bcast of m
Reduce_scatter via reduce   binomial reduce of T(m) + linear scatterv
Reduce_scatter pairwise     p-1 rounds of T(m / p)
Barrier dissemination       ceil(log2 p) rounds of T(0)
==========================  ===========================================

:func:`crosscheck` grades a :class:`repro.mpi.tuning.DecisionTable`
against these models cell by cell, flagging decision-table entries
whose predicted time is far off the model-optimal algorithm.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.netsim.libraries import LibraryModel


def _log2ceil(p: int) -> int:
    return max(1, math.ceil(math.log2(p))) if p > 1 else 0


def bcast_binomial_time(lib: LibraryModel, p: int, m: int) -> float:
    """Completion time of a binomial-tree broadcast."""
    return _log2ceil(p) * lib.one_way_time(m)


def bcast_linear_time(lib: LibraryModel, p: int, m: int) -> float:
    """Root sends p-1 serialized messages; the last arrival finishes.

    Each send occupies the root's CPU (overhead + packing) AND the
    root's network link (wire serialization) before the next can go
    out; the final message then completes end-to-end.
    """
    if p == 1:
        return 0.0
    occupancy = (
        lib.overhead_send_s
        + lib.copy_time(m) / 2
        + m / lib.fabric.effective_bandwidth_Bps
    )
    return (p - 2) * occupancy + lib.one_way_time(m)


def bcast_scatter_allgather_time(lib: LibraryModel, p: int, m: int) -> float:
    """Van de Geijn: binomial scatter of halves + ring allgather."""
    if p == 1:
        return 0.0
    seg = max(m // p, 1)
    # Scatter: log2(p) rounds, round k moves m/2^(k+1).
    scatter = 0.0
    piece = m / 2
    for _ in range(_log2ceil(p)):
        scatter += lib.one_way_time(int(max(piece, 1)))
        piece /= 2
    allgather = (p - 1) * lib.one_way_time(seg)
    return scatter + allgather


def _pipelined_tree_time(lib: LibraryModel, p: int, m: int) -> float:
    """Segmented binomial tree: the pipe fills in log2(p) rounds, then
    streams the remaining segments behind the first."""
    if p == 1:
        return 0.0
    from repro.mpi.algorithms import SEGMENT_BYTES

    nseg = max(1, math.ceil(m / SEGMENT_BYTES))
    seg = min(m, SEGMENT_BYTES)
    return (_log2ceil(p) + nseg - 1) * lib.one_way_time(int(seg))


def bcast_binomial_pipelined_time(lib: LibraryModel, p: int, m: int) -> float:
    return _pipelined_tree_time(lib, p, m)


def reduce_binomial_time(lib: LibraryModel, p: int, m: int) -> float:
    """Binomial combine toward the root (ignores fold compute)."""
    return _log2ceil(p) * lib.one_way_time(m)


def reduce_linear_time(lib: LibraryModel, p: int, m: int) -> float:
    """p-1 serialized arrivals at the root (mirror of bcast linear)."""
    return bcast_linear_time(lib, p, m)


def reduce_binomial_pipelined_time(lib: LibraryModel, p: int, m: int) -> float:
    return _pipelined_tree_time(lib, p, m)


def allreduce_reduce_bcast_time(lib: LibraryModel, p: int, m: int) -> float:
    return 2 * _log2ceil(p) * lib.one_way_time(m)


def allreduce_recursive_doubling_time(lib: LibraryModel, p: int, m: int) -> float:
    return _log2ceil(p) * lib.one_way_time(m)


def allreduce_rabenseifner_time(lib: LibraryModel, p: int, m: int) -> float:
    """Recursive-halving reduce-scatter + recursive-doubling allgather:
    each phase exchanges m/2, m/4, ... — 2(p-1)/p * m bytes total."""
    if p == 1:
        return 0.0
    halving = sum(
        lib.one_way_time(int(max(m / (1 << (k + 1)), 1)))
        for k in range(_log2ceil(p))
    )
    return 2 * halving


def gather_linear_time(lib: LibraryModel, p: int, m: int) -> float:
    """p-1 serialized block transfers bottlenecked at the root
    (*m* is the total payload; each block is m/p)."""
    if p == 1:
        return 0.0
    block = max(m // p, 1)
    occupancy = (
        lib.overhead_send_s
        + lib.copy_time(block) / 2
        + block / lib.fabric.effective_bandwidth_Bps
    )
    return (p - 2) * occupancy + lib.one_way_time(block)


def gather_binomial_time(lib: LibraryModel, p: int, m: int) -> float:
    """log2(p) rounds; round k moves spans of 2^k blocks."""
    if p == 1:
        return 0.0
    block = max(m // p, 1)
    return sum(
        lib.one_way_time(int(min((1 << k) * block, m)))
        for k in range(_log2ceil(p))
    )


scatter_linear_time = gather_linear_time
scatter_binomial_time = gather_binomial_time


def allgather_ring_time(lib: LibraryModel, p: int, m_block: int) -> float:
    return (p - 1) * lib.one_way_time(m_block)


def allgather_gather_bcast_time(lib: LibraryModel, p: int, m_block: int) -> float:
    gather = (p - 1) * lib.one_way_time(m_block)
    return gather + bcast_binomial_time(lib, p, p * m_block)


def allgatherv_gather_bcast_time(lib: LibraryModel, p: int, m: int) -> float:
    """Linear gatherv of m/p blocks into rank 0, then a bcast of m."""
    return gather_linear_time(lib, p, m) + bcast_binomial_time(lib, p, m)


def allgatherv_ring_time(lib: LibraryModel, p: int, m: int) -> float:
    if p == 1:
        return 0.0
    return (p - 1) * lib.one_way_time(max(m // p, 1))


def reduce_scatter_reduce_scatterv_time(lib: LibraryModel, p: int, m: int) -> float:
    """Binomial reduce of the whole vector + linear scatterv of blocks."""
    return reduce_binomial_time(lib, p, m) + gather_linear_time(lib, p, m)


def reduce_scatter_pairwise_time(lib: LibraryModel, p: int, m: int) -> float:
    if p == 1:
        return 0.0
    return (p - 1) * lib.one_way_time(max(m // p, 1))


def barrier_dissemination_time(lib: LibraryModel, p: int) -> float:
    return _log2ceil(p) * lib.one_way_time(0)


#: Named model registry mirroring repro.mpi.algorithms.REGISTRY.
#: For allgather, *m* is the per-rank block; everywhere else it is the
#: total vector size in bytes (the same key the decision table uses).
MODELS: dict[str, dict[str, Callable[..., float]]] = {
    "bcast": {
        "binomial": bcast_binomial_time,
        "linear": bcast_linear_time,
        "scatter_allgather": bcast_scatter_allgather_time,
        "binomial_pipelined": bcast_binomial_pipelined_time,
    },
    "reduce": {
        "binomial": reduce_binomial_time,
        "linear": reduce_linear_time,
        "binomial_pipelined": reduce_binomial_pipelined_time,
    },
    "allreduce": {
        "reduce_bcast": allreduce_reduce_bcast_time,
        "recursive_doubling": allreduce_recursive_doubling_time,
        "rabenseifner": allreduce_rabenseifner_time,
    },
    "allgather": {
        "ring": allgather_ring_time,
        "gather_bcast": allgather_gather_bcast_time,
    },
    "allgatherv": {
        "gather_bcast": allgatherv_gather_bcast_time,
        "ring": allgatherv_ring_time,
    },
    "gather": {
        "linear": gather_linear_time,
        "binomial": gather_binomial_time,
    },
    "scatter": {
        "linear": scatter_linear_time,
        "binomial": scatter_binomial_time,
    },
    "reduce_scatter": {
        "reduce_scatterv": reduce_scatter_reduce_scatterv_time,
        "pairwise": reduce_scatter_pairwise_time,
    },
}


def compare(
    lib: LibraryModel, collective: str, p: int, m: int
) -> dict[str, float]:
    """Completion times of every algorithm for one (p, m) point."""
    return {
        name: fn(lib, p, m) for name, fn in MODELS[collective].items()
    }


def model_best(lib: LibraryModel, collective: str, p: int, m: int) -> str:
    """The analytically fastest algorithm for one (p, m) point."""
    times = compare(lib, collective, p, m)
    return min(times, key=times.get)


def crosscheck(
    lib: LibraryModel,
    table,
    cells: list[tuple[str, int, int]],
    slack: float = 2.0,
) -> list[dict]:
    """Grade a decision table against the analytic models.

    *table* is a :class:`repro.mpi.tuning.DecisionTable`; *cells* are
    ``(collective, p, m)`` points.  A cell ``agrees`` when the table's
    pick is predicted to finish within *slack* x the model-best time —
    benchmarks trump models, so disagreement is a flag to re-measure,
    not an error.
    """
    from repro.mpi.algorithms import DEFAULTS

    rows = []
    for collective, p, m in cells:
        times = compare(lib, collective, p, m)
        best = min(times, key=times.get)
        chosen = table.choose(collective, m, p) or DEFAULTS[collective]
        predicted = times.get(chosen)
        rows.append(
            {
                "collective": collective,
                "procs": p,
                "bytes": m,
                "chosen": chosen,
                "model_best": best,
                "chosen_time_s": predicted,
                "best_time_s": times[best],
                "agrees": (
                    predicted is not None and predicted <= slack * times[best]
                ),
            }
        )
    return rows
