"""Analytic collective-algorithm models on the simulated cluster.

The paper's testbed — StarBug, 8 dual-Xeon nodes — ran point-to-point
benchmarks only; this module extends the calibrated per-library models
to *collective* completion times, so algorithm choices (see
:mod:`repro.mpi.algorithms`) can be studied at cluster scale without
the cluster.  Every model is expressed in terms of the library's
point-to-point time ``T(m)`` over its fabric, following Hockney-style
analysis:

=======================  ===========================================
Bcast binomial           ceil(log2 p) rounds of T(m)
Bcast linear             p-1 serialized sends from the root
Bcast scatter+allgather  binomial scatter of m/p segments + ring
Allreduce reduce+bcast   2 x binomial tree of T(m)
Allreduce recursive dbl  ceil(log2 p) exchange rounds of T(m)
Allgather ring           p-1 rounds of T(m_block)
Allgather gather+bcast   linear gather + binomial bcast of p*m_block
Barrier dissemination    ceil(log2 p) rounds of T(0)
=======================  ===========================================
"""

from __future__ import annotations

import math
from typing import Callable

from repro.netsim.libraries import LibraryModel


def _log2ceil(p: int) -> int:
    return max(1, math.ceil(math.log2(p))) if p > 1 else 0


def bcast_binomial_time(lib: LibraryModel, p: int, m: int) -> float:
    """Completion time of a binomial-tree broadcast."""
    return _log2ceil(p) * lib.one_way_time(m)


def bcast_linear_time(lib: LibraryModel, p: int, m: int) -> float:
    """Root sends p-1 serialized messages; the last arrival finishes.

    Each send occupies the root's CPU (overhead + packing) AND the
    root's network link (wire serialization) before the next can go
    out; the final message then completes end-to-end.
    """
    if p == 1:
        return 0.0
    occupancy = (
        lib.overhead_send_s
        + lib.copy_time(m) / 2
        + m / lib.fabric.effective_bandwidth_Bps
    )
    return (p - 2) * occupancy + lib.one_way_time(m)


def bcast_scatter_allgather_time(lib: LibraryModel, p: int, m: int) -> float:
    """Van de Geijn: binomial scatter of halves + ring allgather."""
    if p == 1:
        return 0.0
    seg = max(m // p, 1)
    # Scatter: log2(p) rounds, round k moves m/2^(k+1).
    scatter = 0.0
    piece = m / 2
    for _ in range(_log2ceil(p)):
        scatter += lib.one_way_time(int(max(piece, 1)))
        piece /= 2
    allgather = (p - 1) * lib.one_way_time(seg)
    return scatter + allgather


def allreduce_reduce_bcast_time(lib: LibraryModel, p: int, m: int) -> float:
    return 2 * _log2ceil(p) * lib.one_way_time(m)


def allreduce_recursive_doubling_time(lib: LibraryModel, p: int, m: int) -> float:
    return _log2ceil(p) * lib.one_way_time(m)


def allgather_ring_time(lib: LibraryModel, p: int, m_block: int) -> float:
    return (p - 1) * lib.one_way_time(m_block)


def allgather_gather_bcast_time(lib: LibraryModel, p: int, m_block: int) -> float:
    gather = (p - 1) * lib.one_way_time(m_block)
    return gather + bcast_binomial_time(lib, p, p * m_block)


def barrier_dissemination_time(lib: LibraryModel, p: int) -> float:
    return _log2ceil(p) * lib.one_way_time(0)


#: Named model registry mirroring repro.mpi.algorithms.REGISTRY.
MODELS: dict[str, dict[str, Callable[..., float]]] = {
    "bcast": {
        "binomial": bcast_binomial_time,
        "linear": bcast_linear_time,
        "scatter_allgather": bcast_scatter_allgather_time,
    },
    "allreduce": {
        "reduce_bcast": allreduce_reduce_bcast_time,
        "recursive_doubling": allreduce_recursive_doubling_time,
    },
    "allgather": {
        "ring": allgather_ring_time,
        "gather_bcast": allgather_gather_bcast_time,
    },
}


def compare(
    lib: LibraryModel, collective: str, p: int, m: int
) -> dict[str, float]:
    """Completion times of every algorithm for one (p, m) point."""
    return {
        name: fn(lib, p, m) for name, fn in MODELS[collective].items()
    }
