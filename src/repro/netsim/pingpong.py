"""The ping-pong benchmark over the simulated fabrics.

Two variants, following the paper's Section V preamble:

* **naive** — the receiver replies the instant the message is in.
  Because the Ethernet NIC driver only looks for new messages every 64
  µs, arrivals quantize to polling ticks and measured round-trip times
  jitter by up to two polling intervals.
* **modified** — the paper's technique: "we introduced random delays
  before the receiver sends the message back to the sender ... we were
  able to negate the affect of network card latency".  The random
  delay decorrelates the reply from the polling phase; subtracting the
  known delay leaves an unbiased transfer-time sample, and averaging
  converges to the true software+wire cost.

The event-driven implementation exercises the
:class:`~repro.netsim.engine.Simulator`; with polling disabled it
reproduces the library model's closed-form ``one_way_time`` exactly
(a property the test suite checks).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from repro.netsim.engine import Simulator
from repro.netsim.libraries import LibraryModel

#: Message sizes used by the paper's figures: 1 B .. 16 MB.
MESSAGE_SIZES: tuple[int, ...] = tuple(1 << k for k in range(0, 25))


def bandwidth_mbps(nbytes: int, seconds: float) -> float:
    """One-way throughput in Mbit/s."""
    return (nbytes * 8.0) / seconds / 1e6


@dataclass
class PingPongSample:
    """One measured round trip."""

    nbytes: int
    round_trip_s: float
    injected_delay_s: float = 0.0

    @property
    def one_way_s(self) -> float:
        """Half the (delay-corrected) round trip."""
        return (self.round_trip_s - self.injected_delay_s) / 2.0


class PingPong:
    """An event-driven ping-pong between two simulated hosts."""

    def __init__(
        self,
        lib: LibraryModel,
        polling: bool = True,
        seed: int = 20060505,
    ) -> None:
        self.lib = lib
        self.polling = polling and lib.fabric.nic_poll_s > 0
        self.rng = random.Random(seed)
        # Hosts' polling phases are independent: each NIC started
        # polling at an arbitrary instant.
        self._poll_phase = [
            self.rng.uniform(0, lib.fabric.nic_poll_s) if self.polling else 0.0
            for _ in range(2)
        ]

    # ------------------------------------------------------------------

    def _poll_align(self, t: float, host: int) -> float:
        """Delay *t* to the receiving host's next NIC polling tick."""
        if not self.polling:
            return t
        period = self.lib.fabric.nic_poll_s
        phase = self._poll_phase[host]
        k = math.ceil((t - phase) / period)
        return phase + k * period

    def _one_way(self, sim: Simulator, nbytes: int, start: float, dst: int, done) -> None:
        """Schedule one message's life: overheads, wire, polling, copies."""
        lib = self.lib
        t = start + lib.overhead_send_s + lib.copy_time(nbytes) / 2.0
        if lib.eager_threshold is not None and nbytes > lib.eager_threshold:
            # Rendezvous: RTS over, RTR back, then the data.
            t += 2.0 * lib.control_message_time()
            if self.polling:
                # Both control messages also land on polling ticks.
                t = self._poll_align(t, dst)
        arrive = t + lib.fabric.wire_time(nbytes)
        arrive = self._poll_align(arrive, dst)
        finish = arrive + lib.copy_time(nbytes) / 2.0 + lib.overhead_recv_s
        sim.at(finish, lambda: done(finish), label=f"msg{nbytes}->h{dst}")

    # ------------------------------------------------------------------

    def round_trip(self, nbytes: int, injected_delay_s: float = 0.0) -> PingPongSample:
        """Simulate one round trip; optionally delay the reply."""
        sim = Simulator()
        result: dict[str, float] = {}

        def pong_done(t: float) -> None:
            result["end"] = t

        def ping_arrived(t: float) -> None:
            self._one_way(sim, nbytes, t + injected_delay_s, 0, pong_done)

        self._one_way(sim, nbytes, 0.0, 1, ping_arrived)
        sim.run()
        return PingPongSample(nbytes, result["end"], injected_delay_s)

    def measure_naive(self, nbytes: int, repeats: int = 10) -> list[float]:
        """Naive benchmark: one-way times straight from round trips.

        A tight ping-pong loop stays *phase-locked* to the NIC polling
        clock: every iteration lands on the same tick offset, so all
        samples in one run share one arbitrary bias in [0, 2·period) —
        which is why different runs (different phases) disagree and the
        paper saw "variability in timing measurements".  Phases are
        therefore fixed for the lifetime of this object; vary the seed
        to model separate benchmark runs.
        """
        return [self.round_trip(nbytes).one_way_s for _ in range(repeats)]

    def measure_modified(self, nbytes: int, repeats: int = 10) -> list[float]:
        """The paper's modified benchmark: random delay, then subtract.

        Randomizing the reply instant decorrelates it from the polling
        phase; subtracting the injected delay leaves samples whose
        *mean* converges on the true transfer time.
        """
        out = []
        period = max(self.lib.fabric.nic_poll_s, 1e-6)
        for _ in range(repeats):
            self._reseed_phases()
            delay = self.rng.uniform(0, 8 * period)
            out.append(self.round_trip(nbytes, injected_delay_s=delay).one_way_s)
        return out

    def one_way_time(self, nbytes: int, repeats: int = 10) -> float:
        """Best estimate of the one-way time (modified technique, mean)."""
        samples = self.measure_modified(nbytes, repeats)
        return sum(samples) / len(samples)

    def _reseed_phases(self) -> None:
        if self.polling:
            self._poll_phase = [
                self.rng.uniform(0, self.lib.fabric.nic_poll_s) for _ in range(2)
            ]


def sweep(
    lib: LibraryModel,
    sizes: Sequence[int] = MESSAGE_SIZES,
    polling: bool = False,
    repeats: int = 4,
    seed: int = 20060505,
) -> list[tuple[int, float, float]]:
    """(size, one-way seconds, Mbps) for each message size.

    With ``polling=False`` (default for figure regeneration — the
    paper's own figures come from its modified benchmark) the result is
    deterministic and matches the closed-form model.
    """
    bench = PingPong(lib, polling=polling, seed=seed)
    rows = []
    for nbytes in sizes:
        t = bench.one_way_time(nbytes, repeats=repeats) if polling else (
            bench.round_trip(nbytes).one_way_s
        )
        rows.append((nbytes, t, bandwidth_mbps(nbytes, t)))
    return rows
