"""Fabric (link) models for the paper's three test networks.

Each fabric carries the physical parameters shared by every messaging
library running over it:

* ``bandwidth_bps`` — raw signalling rate;
* ``wire_efficiency`` — fraction of raw bandwidth reachable by a
  perfect zero-copy stack (framing/protocol headers; TCP/IP on
  Ethernet reaches ~93%, MX on Myrinet ~92.5%);
* ``latency_s`` — one-way wire+switch latency excluding software;
* ``nic_poll_s`` — the NIC driver's polling interval.  The paper:
  "the network card drivers used on our cluster have 64 microseconds
  network latency.  The network latency of the card drivers is an
  attribute that determines the polling interval for checking new
  messages" — the cause of ping-pong variability their modified
  benchmark removes.  Myrinet MX is interrupt/poll-free at user level.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Fabric:
    """One interconnect's physical model."""

    name: str
    bandwidth_bps: float
    wire_efficiency: float
    latency_s: float
    nic_poll_s: float = 0.0

    @property
    def effective_bandwidth_Bps(self) -> float:
        """Achievable payload bytes/second for a perfect stack."""
        return self.bandwidth_bps * self.wire_efficiency / 8.0

    def wire_time(self, nbytes: int) -> float:
        """Serialization + propagation time for *nbytes*."""
        return self.latency_s + nbytes / self.effective_bandwidth_Bps


#: 100 Mbit/s switched Fast Ethernet (paper Section V-B).
FAST_ETHERNET = Fabric(
    name="FastEthernet",
    bandwidth_bps=100e6,
    wire_efficiency=0.93,
    latency_s=28e-6,
    nic_poll_s=64e-6,
)

#: Onboard Intel Gigabit adaptors, e1000 driver (Section V-C).
GIGABIT_ETHERNET = Fabric(
    name="GigabitEthernet",
    bandwidth_bps=1e9,
    wire_efficiency=0.93,
    latency_s=9e-6,
    nic_poll_s=64e-6,
)

#: 2 Gbit Myrinet with the MX library (Section V-D).  MX busy-polls,
#: so no driver polling quantization.
MYRINET_2G = Fabric(
    name="Myrinet2G",
    bandwidth_bps=2e9,
    wire_efficiency=0.925,
    latency_s=1.5e-6,
    nic_poll_s=0.0,
)

FABRICS: dict[str, Fabric] = {
    f.name: f for f in (FAST_ETHERNET, GIGABIT_ETHERNET, MYRINET_2G)
}
