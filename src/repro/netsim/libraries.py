"""Per-library software cost models, calibrated to the paper's figures.

Every messaging system the paper benchmarks is modelled as software
wrapped around the shared fabric:

* ``overhead_send_s`` / ``overhead_recv_s`` — fixed per-message CPU
  cost at each end (protocol stack traversal, JVM entry, matching).
  These set the 1-byte latency: ``latency = o_send + wire + o_recv``.
* ``copies`` — per-byte stages (buffer packing, JNI crossings, socket
  copies), each a :class:`CopyStage` with an optional cache knee.
  These set the large-message plateau.
* ``eager_threshold`` — where the library switches from eager to
  rendezvous, adding a control-message round trip (the 128 KB dip the
  paper points out for MPICH, mpijava and MPJ Express).  ``None`` for
  libraries that stream (LAM, MPJ/Ibis) or whose NIC library handles
  protocols internally (MX).

Calibration targets are the numbers the paper states or plots
(Sections V-B/C/D); each table below cites them.  Derivations: for a
1-byte message ``o_send + o_recv = latency_target − fabric.latency``;
for 16 MB, per-byte copy cost ``= 8/bw_target(Mbps) − 8/(nominal·η)``
µs/B, expressed as an equivalent copy bandwidth in MB/s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.netsim.fabrics import (
    FAST_ETHERNET,
    Fabric,
    GIGABIT_ETHERNET,
    MYRINET_2G,
)

#: The paper's protocol switch point (Section IV-A.1).
EAGER_THRESHOLD = 128 * 1024


@dataclass(frozen=True)
class CopyStage:
    """One per-byte cost stage with an optional cache knee.

    Below ``cache_bytes`` the copy runs at ``bandwidth_MBps`` (data hot
    in cache); beyond it at ``beyond_cache_MBps`` — the mechanism
    behind mpijava's Myrinet throughput *dropping* after its 64 KB
    peak (Section V-D).
    """

    label: str
    bandwidth_MBps: float
    cache_bytes: Optional[int] = None
    beyond_cache_MBps: Optional[float] = None

    def time(self, nbytes: int) -> float:
        """Seconds to move *nbytes* through this stage."""
        bw = self.bandwidth_MBps
        if (
            self.cache_bytes is not None
            and self.beyond_cache_MBps is not None
            and nbytes > self.cache_bytes
        ):
            bw = self.beyond_cache_MBps
        return nbytes / (bw * 1e6)


@dataclass(frozen=True)
class LibraryModel:
    """A messaging library's software model over one fabric."""

    name: str
    fabric: Fabric
    overhead_send_s: float
    overhead_recv_s: float
    copies: tuple[CopyStage, ...] = ()
    eager_threshold: Optional[int] = None
    lang: str = "C"

    # ------------------------------------------------------------------

    def copy_time(self, nbytes: int) -> float:
        return sum(stage.time(nbytes) for stage in self.copies)

    def control_message_time(self) -> float:
        """One small control message end to end (RTS or RTR)."""
        return self.overhead_send_s + self.fabric.latency_s + self.overhead_recv_s

    def one_way_time(self, nbytes: int) -> float:
        """Analytic one-way transfer time (no polling jitter).

        The event-driven :class:`~repro.netsim.pingpong.PingPong`
        reproduces exactly this when polling is disabled; keeping the
        closed form makes calibration and property tests direct.
        """
        t = (
            self.overhead_send_s
            + self.copy_time(nbytes)
            + self.fabric.wire_time(nbytes)
            + self.overhead_recv_s
        )
        if self.eager_threshold is not None and nbytes > self.eager_threshold:
            # RTS + RTR exchange before the data (paper Fig. 6-8).
            t += 2.0 * self.control_message_time()
        return t

    def bandwidth_mbps(self, nbytes: int) -> float:
        """One-way throughput in Mbit/s at message size *nbytes*."""
        return (nbytes * 8.0) / self.one_way_time(nbytes) / 1e6


def _split(latency_target_us: float, fabric: Fabric) -> tuple[float, float]:
    """Split (latency − wire) evenly into send/recv overheads."""
    software = latency_target_us * 1e-6 - fabric.latency_s
    if software <= 0:
        raise ValueError(
            f"latency target {latency_target_us}µs below wire latency of "
            f"{fabric.name}"
        )
    return software / 2.0, software / 2.0


def _model(
    name: str,
    fabric: Fabric,
    latency_us: float,
    copies: Sequence[CopyStage] = (),
    eager_threshold: Optional[int] = None,
    lang: str = "C",
) -> LibraryModel:
    o_send, o_recv = _split(latency_us, fabric)
    return LibraryModel(
        name=name,
        fabric=fabric,
        overhead_send_s=o_send,
        overhead_recv_s=o_recv,
        copies=tuple(copies),
        eager_threshold=eager_threshold,
        lang=lang,
    )


# ======================================================================
# Fast Ethernet (Figures 10 & 11)
#
# Stated targets: MPJE latency 164 µs; TCPIbis 144 µs; NIOIbis 143 µs;
# mpjdev "slightly lower" than MPJE; C MPI lowest, mpijava next.
# Throughput at 16 MB: all ≥84%; mpijava 84%; LAM and both Ibis
# devices 90%, "followed by MPICH and MPJ Express"; 128 KB dip for
# MPICH, mpijava, MPJE.


def fast_ethernet_libraries() -> dict[str, LibraryModel]:
    f = FAST_ETHERNET
    return {
        "LAM/MPI": _model(
            "LAM/MPI", f, 62.0,
            [CopyStage("socket copy", 349.0)],
        ),
        "MPICH": _model(
            "MPICH", f, 68.0,
            [CopyStage("stack copies", 204.0)],
            eager_threshold=EAGER_THRESHOLD,
        ),
        "mpijava": _model(
            "mpijava", f, 80.0,
            [CopyStage("JNI + stack copies", 108.0)],
            eager_threshold=EAGER_THRESHOLD,
            lang="Java",
        ),
        "MPJ/Ibis (TCPIbis)": _model(
            "MPJ/Ibis (TCPIbis)", f, 144.0,
            [CopyStage("stream write", 349.0)],
            lang="Java",
        ),
        "MPJ/Ibis (NIOIbis)": _model(
            "MPJ/Ibis (NIOIbis)", f, 143.0,
            [CopyStage("stream write", 349.0)],
            lang="Java",
        ),
        "mpjdev": _model(
            "mpjdev", f, 156.0,
            [CopyStage("socket copy", 185.0)],
            eager_threshold=EAGER_THRESHOLD,
            lang="Java",
        ),
        "MPJ Express": _model(
            "MPJ Express", f, 164.0,
            [CopyStage("pack + unpack + socket", 155.0)],
            eager_threshold=EAGER_THRESHOLD,
            lang="Java",
        ),
    }


# ======================================================================
# Gigabit Ethernet (Figures 12 & 13)
#
# Stated targets at 16 MB: LAM, TCPIbis, NIOIbis 90%; MPICH 76%;
# MPJ Express 68%; mpijava 60%; mpjdev 90%.  Latencies "reduced due to
# a faster network technology", same ordering as Fast Ethernet.


def gigabit_ethernet_libraries() -> dict[str, LibraryModel]:
    f = GIGABIT_ETHERNET
    return {
        "LAM/MPI": _model(
            "LAM/MPI", f, 43.0,
            [CopyStage("socket copy", 3497.0)],
        ),
        "MPICH": _model(
            "MPICH", f, 48.0,
            [CopyStage("stack copies", 520.0)],
            eager_threshold=EAGER_THRESHOLD,
        ),
        "mpijava": _model(
            "mpijava", f, 60.0,
            [CopyStage("JNI + stack copies", 211.0)],
            eager_threshold=EAGER_THRESHOLD,
            lang="Java",
        ),
        "MPJ/Ibis (TCPIbis)": _model(
            "MPJ/Ibis (TCPIbis)", f, 125.0,
            [CopyStage("stream write", 3497.0)],
            lang="Java",
        ),
        "MPJ/Ibis (NIOIbis)": _model(
            "MPJ/Ibis (NIOIbis)", f, 124.0,
            [CopyStage("stream write", 3497.0)],
            lang="Java",
        ),
        "mpjdev": _model(
            "mpjdev", f, 135.0,
            [CopyStage("direct-buffer write", 3497.0)],
            eager_threshold=EAGER_THRESHOLD,
            lang="Java",
        ),
        "MPJ Express": _model(
            "MPJ Express", f, 145.0,
            [CopyStage("pack + unpack", 316.0)],
            eager_threshold=EAGER_THRESHOLD,
            lang="Java",
        ),
    }


# ======================================================================
# Myrinet (Figures 14 & 15)
#
# Stated targets: MPICH-MX latency 4 µs, 1800 Mbps at 16 MB; mpijava
# latency 12 µs, peak 1347 Mbps at 64 KB dropping to 868 Mbps at
# 16 MB; MPJ Express latency 23 µs, 1097 Mbps; mpjdev 1826 Mbps
# (*more* than MPICH-MX — the direct-buffer/no-copy argument);
# MPJ/Ibis's net.gm figures quoted from [1]: 42 µs, 1100 Mbps.


def myrinet_libraries() -> dict[str, LibraryModel]:
    f = MYRINET_2G
    return {
        "MPICH-MX": _model(
            "MPICH-MX", f, 4.0,
            [CopyStage("host copy", 8333.0)],
        ),
        "mpijava": _model(
            "mpijava", f, 12.0,
            [
                CopyStage(
                    "JNI copy (cache knee)",
                    619.0,
                    cache_bytes=512 * 1024,
                    beyond_cache_MBps=204.0,
                )
            ],
            lang="Java",
        ),
        "mpjdev": _model(
            "mpjdev", f, 20.0,
            [CopyStage("segment post", 17575.0)],
            lang="Java",
        ),
        "MPJ Express": _model(
            "MPJ Express", f, 23.0,
            [CopyStage("pack + unpack", 337.0)],
            lang="Java",
        ),
        "MPJ/Ibis (net.gm)": _model(
            "MPJ/Ibis (net.gm)", f, 42.0,
            [CopyStage("gm copies", 330.0)],
            lang="Java",
        ),
    }


def libraries_for(fabric_name: str) -> dict[str, LibraryModel]:
    """Cost-model set for one fabric by name."""
    table = {
        "FastEthernet": fast_ethernet_libraries,
        "GigabitEthernet": gigabit_ethernet_libraries,
        "Myrinet2G": myrinet_libraries,
    }
    try:
        return table[fabric_name]()
    except KeyError:
        raise ValueError(
            f"unknown fabric {fabric_name!r}; known: {sorted(table)}"
        ) from None
