"""lock-order: static verification of the lock-acquisition hierarchy.

Maps every ``with <lock>:`` / ``<lock>.acquire()`` site to a canonical
lock class from :mod:`repro.xdev.locknames` — the same vocabulary the
runtime watchdog's lock graph uses — and checks two things:

* **direct nesting**: entering a region that holds class A and then
  acquires class B requires ``rank(A) < rank(B)`` (or A == B for a
  self-nesting class);
* **transitive nesting**: calling a function while holding A is a
  violation if anything that function (transitively) acquires would
  break the same rule.

Unclassifiable context managers (files, tracers, chaos scopes) are
ignored; unknown lock-ish attribute names fall back to ``internal``.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.callgraph import CallGraph, dotted_text
from repro.analysis.core import Finding, Project, enclosing_symbols
from repro.xdev import locknames

CHECKER = "lock-order"


def iter_calls(node: ast.AST):
    """All Call nodes under *node*, pruning nested defs and lambdas
    (their bodies run later, on whatever thread invokes them).  When
    *node* itself is a def, its own body is scanned — only defs nested
    *below* the root are pruned."""
    if isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
        stack = list(ast.iter_child_nodes(node))
    else:
        stack = [node]
    while stack:
        n = stack.pop()
        if isinstance(n, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(n, ast.Call):
            yield n
        stack.extend(ast.iter_child_nodes(n))

#: attribute name -> lock class, anywhere in the tree
_ATTR_CLASS = {
    "_wc_lock": locknames.RECV_WILDCARD,
    "_send_lock": locknames.SEND_SETS,
    "_rndz_lock": locknames.RENDEZVOUS_IDS,
    "_channel_locks_guard": locknames.CHANNEL_GUARD,
    "_cache_lock": locknames.CONN_CACHE,
    "_out_locks": locknames.PROC_OUT,
    "ticker": locknames.TICKER,
    "_ticker": locknames.TICKER,
}

#: (module, attribute name) -> lock class, where the bare name is
#: ambiguous across modules
_MODULE_ATTR_CLASS = {
    ("repro.xdev.completion", "_locks"): locknames.COMPLETED,
    ("repro.shm.ring", "_locks"): locknames.RING_SET,
    ("repro.xdev.matching", "lock"): locknames.RECV_SHARD,
}

#: method calls whose *result* is a lock of a known class
_FACTORY_CLASS = {
    "channel_lock": locknames.CHANNEL,
}


def classify_lock(
    node: ast.AST, module: str, bindings: Optional[dict[str, str]] = None
) -> Optional[str]:
    """Lock class of a context/acquire expression, or None if not a lock."""
    bindings = bindings or {}
    if isinstance(node, ast.Name):
        return bindings.get(node.id)
    if isinstance(node, ast.Subscript):
        return classify_lock(node.value, module, bindings)
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in _FACTORY_CLASS:
                return _FACTORY_CLASS[node.func.attr]
            if node.func.attr == "_all_locked":
                # handled by callers (expands to two classes)
                return None
        return None
    if isinstance(node, ast.Attribute):
        attr = node.attr
        if (module, attr) in _MODULE_ATTR_CLASS:
            return _MODULE_ATTR_CLASS[(module, attr)]
        if attr in _ATTR_CLASS:
            return _ATTR_CLASS[attr]
        if attr == "lock":
            base = dotted_text(node.value) or ""
            if "shard" in base:
                return locknames.RECV_SHARD
            return locknames.INTERNAL
        # leaf fallback: any lock-ish private attribute
        if "lock" in attr or attr in ("_cond", "_inner"):
            return locknames.INTERNAL
    return None


def _classify_with_item(
    item: ast.withitem, module: str, bindings: dict[str, str]
) -> list[str]:
    """Lock classes entered by one ``with`` item (0, 1 or 2 of them)."""
    ctx = item.context_expr
    if (
        isinstance(ctx, ast.Call)
        and isinstance(ctx.func, ast.Attribute)
        and ctx.func.attr == "_all_locked"
    ):
        return [locknames.RECV_SHARD, locknames.RECV_WILDCARD]
    c = classify_lock(ctx, module, bindings)
    return [c] if c is not None else []


def _local_lock_bindings(fn_node: ast.AST, module: str) -> dict[str, str]:
    """``lock = self.channel_lock(...)``-style local names -> class."""
    out: dict[str, str] = {}
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                c = None
                value = node.value
                if isinstance(value, ast.Call) and isinstance(
                    value.func, ast.Attribute
                ):
                    c = _FACTORY_CLASS.get(value.func.attr)
                if c is None and isinstance(value, (ast.Attribute, ast.Subscript)):
                    c = classify_lock(value, module, {})
                if c is not None:
                    out.setdefault(target.id, c)
    return out


def _direct_acquires(fn, module: str) -> set[str]:
    """Every lock class *fn* acquires anywhere in its own body."""
    bindings = _local_lock_bindings(fn.node, module)
    out: set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                out.update(_classify_with_item(item, module, bindings))
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
        ):
            c = classify_lock(node.func.value, module, bindings)
            if c is not None:
                out.add(c)
    return out


def _transitive_acquires(cg: CallGraph) -> dict[str, set[str]]:
    direct = {
        q: _direct_acquires(fn, fn.module) for q, fn in cg.functions.items()
    }
    # fixed point over call edges
    changed = True
    while changed:
        changed = False
        for q, fn in cg.functions.items():
            acc = direct[q]
            before = len(acc)
            for site in fn.calls:
                for callee in site.callees:
                    if callee in direct and callee != q:
                        acc |= direct[callee]
            if len(acc) != before:
                changed = True
    return direct


def _ok(held: str, new: str) -> bool:
    if held == new:
        return new in locknames.SELF_NESTING
    return locknames.rank_of(held) < locknames.rank_of(new)


class _FunctionChecker:
    """Simulates held-lock state over one function body in source order."""

    def __init__(self, cg, fn, trans, findings, symbols) -> None:
        self.cg = cg
        self.fn = fn
        self.trans = trans
        self.findings = findings
        self.symbols = symbols
        self.module = fn.module
        self.bindings = _local_lock_bindings(fn.node, fn.module)
        self.held: list[str] = []
        self.sites_by_node = {id(cs.node): cs for cs in fn.calls}

    # ------------------------------------------------------------------

    def _report(self, line: int, message: str) -> None:
        self.findings.append(
            Finding(
                checker=CHECKER,
                path=self.fn.sf.rel,
                line=line,
                symbol=self.symbols.get(line, self.fn.qname),
                message=message,
            )
        )

    def _push(self, new: str, line: int) -> None:
        for held in self.held:
            if not _ok(held, new):
                self._report(
                    line,
                    f"acquires '{new}' (rank {locknames.rank_of(new)}) while "
                    f"holding '{held}' (rank {locknames.rank_of(held)}); the "
                    "hierarchy requires strictly ascending ranks "
                    "(see repro.xdev.locknames)",
                )
        self.held.append(new)

    def _pop(self, cls: str) -> None:
        for i in range(len(self.held) - 1, -1, -1):
            if self.held[i] == cls:
                del self.held[i]
                return

    # ------------------------------------------------------------------

    def check(self) -> None:
        self._walk(self.fn.node.body)

    def _walk(self, stmts) -> None:
        for s in stmts:
            self._stmt(s)

    def _stmt(self, s: ast.stmt) -> None:
        if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are checked as their own functions
        if isinstance(s, (ast.With, ast.AsyncWith)):
            entered: list[str] = []
            for item in s.items:
                classes = _classify_with_item(item, self.module, self.bindings)
                if classes:
                    for c in classes:
                        self._push(c, s.lineno)
                        entered.append(c)
                else:
                    self._expr(item.context_expr)
            self._walk(s.body)
            for c in reversed(entered):
                self._pop(c)
            return
        if isinstance(s, ast.If):
            self._expr(s.test)
            # Branches must not leak acquisitions into each other: an
            # if/else that acquires the same lock both ways is not
            # self-nesting.  Simulate each on its own copy and continue
            # with the longer (more-held = conservative) result.
            entry = list(self.held)
            self.held = list(entry)
            self._walk(s.body)
            after_body = self.held
            self.held = list(entry)
            self._walk(s.orelse)
            after_orelse = self.held
            self.held = (
                after_body
                if len(after_body) >= len(after_orelse)
                else after_orelse
            )
            return
        if isinstance(s, (ast.For, ast.AsyncFor)):
            self._expr(s.iter)
            self._walk(s.body)
            self._walk(s.orelse)
            return
        if isinstance(s, ast.While):
            self._expr(s.test)
            self._walk(s.body)
            self._walk(s.orelse)
            return
        if isinstance(s, ast.Try):
            self._walk(s.body)
            for h in s.handlers:
                self._walk(h.body)
            self._walk(s.orelse)
            self._walk(s.finalbody)
            return
        # plain statement: scan its expressions for lock ops and calls
        self._expr(s)

    def _expr(self, node: Optional[ast.AST]) -> None:
        if node is None:
            return
        for sub in iter_calls(node):
            self._call(sub)

    def _call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            if node.func.attr == "acquire":
                c = classify_lock(node.func.value, self.module, self.bindings)
                if c is not None:
                    self._push(c, node.lineno)
                return
            if node.func.attr == "release":
                c = classify_lock(node.func.value, self.module, self.bindings)
                if c is not None:
                    self._pop(c)
                return
        if not self.held:
            return
        site = self.sites_by_node.get(id(node))
        if site is None:
            return
        for callee in site.callees:
            acquired = self.trans.get(callee, set())
            for c in sorted(acquired):
                for held in self.held:
                    if not _ok(held, c):
                        self._report(
                            node.lineno,
                            f"holds '{held}' (rank "
                            f"{locknames.rank_of(held)}) across a call to "
                            f"{callee}, which may acquire '{c}' (rank "
                            f"{locknames.rank_of(c)}); the hierarchy "
                            "requires strictly ascending ranks",
                        )


def check(project: Project, cg: CallGraph) -> list[Finding]:
    findings: list[Finding] = []
    trans = _transitive_acquires(cg)
    symbols_cache: dict[str, dict[int, str]] = {}
    for fn in cg.functions.values():
        symbols = symbols_cache.get(fn.sf.rel)
        if symbols is None:
            symbols = symbols_cache[fn.sf.rel] = enclosing_symbols(fn.sf.tree)
        _FunctionChecker(cg, fn, trans, findings, symbols).check()
    return findings
