"""Baseline suppression file for reprolint.

The baseline is a checked-in JSON file (``reprolint-baseline.json`` at
the repo root) listing findings that are acknowledged and waived.  Its
purpose is *ratcheting*: adopt the tool on a tree with pre-existing
findings without blocking CI, then burn the list down.  Each entry
must carry a ``reason`` — an unexplained waiver defeats the point.

Entries match findings by :meth:`repro.analysis.core.Finding.key` —
``(checker, path, symbol, message)``, deliberately *without* the line
number so unrelated edits above a finding don't invalidate the
baseline.  Stale entries (matching nothing) are reported as warnings
so the file shrinks as findings are fixed.

This tree keeps the baseline empty: real findings were fixed, and
designed-blocking sites carry inline ``# reprolint: allow[...]``
directives next to the code they waive, where review can see them.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.core import Finding

VERSION = 1
DEFAULT_NAME = "reprolint-baseline.json"


class BaselineError(ValueError):
    pass


def load(path: Path) -> list[dict]:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("version") != VERSION:
        raise BaselineError(
            f"baseline {path} must be an object with \"version\": {VERSION}"
        )
    entries = data.get("suppressions", [])
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {path}: \"suppressions\" must be a list")
    for i, e in enumerate(entries):
        missing = {"checker", "path", "symbol", "message", "reason"} - set(e)
        if missing:
            raise BaselineError(
                f"baseline {path}: entry {i} missing {sorted(missing)}"
            )
        if not str(e["reason"]).strip():
            raise BaselineError(
                f"baseline {path}: entry {i} has an empty reason — every "
                "waiver must say why"
            )
    return entries


def _entry_key(e: dict) -> tuple[str, str, str, str]:
    return (e["checker"], e["path"], e["symbol"], e["message"])


def apply(
    findings: list[Finding], entries: list[dict]
) -> tuple[list[Finding], list[Finding], list[dict]]:
    """Split into (kept, baselined); also return stale entries."""
    keys = {_entry_key(e) for e in entries}
    kept = [f for f in findings if f.key() not in keys]
    baselined = [f for f in findings if f.key() in keys]
    live = {f.key() for f in findings}
    stale = [e for e in entries if _entry_key(e) not in live]
    return kept, baselined, stale


def render(findings: list[Finding]) -> str:
    """Serialise *findings* as a fresh baseline (reasons to be filled)."""
    return json.dumps(
        {
            "version": VERSION,
            "suppressions": [
                {
                    "checker": f.checker,
                    "path": f.path,
                    "symbol": f.symbol,
                    "message": f.message,
                    "reason": "TODO: justify or fix",
                }
                for f in findings
            ],
        },
        indent=2,
    ) + "\n"
