"""segment-escape: zero-copy views must not outlive their fence.

The zero-copy datapath hands out *live views* of memory it does not
own indefinitely:

* ``Buffer.segments()`` — views of the user's message memory, valid
  only until the delivery fence fires (``Transport.retains_segments``);
* ``begin_landing`` / ``rendezvous_landing`` — an in-place landing
  window, closed by ``finish_landing`` / ``release``;
* ``SpscRing.poll()`` — a view of a shared-memory slot, invalid the
  moment ``consume()`` republishes it.

Storing such a view in an attribute or container detaches it from the
fence; touching it after the fence call reads memory someone else may
already be rewriting.  This checker tracks the view variables
intraprocedurally and flags both escapes:

* **store-escape** — a tainted variable assigned into an attribute or
  subscript, or passed to ``.append``/``.add``/``.put``;
* **use-after-fence** — any mention of the tainted variable lexically
  after the fence call that closes its window (``consume()`` on the
  same ring for ``poll`` views; ``finish_landing``/``.release()`` for
  landing views).

The implementation of the contract itself (:mod:`repro.shm.ring`,
:mod:`repro.buffer.buffer`) is exempt — it *is* the window.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import dotted_text
from repro.analysis.core import Finding, Project, enclosing_symbols

CHECKER = "segment-escape"

#: method calls whose result is a fenced view: method -> fence kind
_SOURCES = {
    "segments": "delivery",
    "begin_landing": "landing",
    "rendezvous_landing": "landing",
    "poll": "ring",
}

_CONTAINER_SINKS = frozenset({"append", "add", "put"})

#: modules that implement the window and legitimately hold the views
_EXEMPT_SUFFIXES = ("repro/shm/ring.py", "repro/buffer/buffer.py")


def _tainted_assigns(fn_node: ast.AST):
    """(var, kind, receiver text, line) for every view-producing assign."""
    for node in ast.walk(fn_node):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        value = node.value
        # poll() returns (kind, view); accept tuple unpacking too
        names: list[str] = []
        if isinstance(target, ast.Name):
            names = [target.id]
        elif isinstance(target, ast.Tuple):
            names = [e.id for e in target.elts if isinstance(e, ast.Name)]
        if not names:
            continue
        call = value
        if isinstance(call, ast.Call) and isinstance(call.func, ast.Attribute):
            kind = _SOURCES.get(call.func.attr)
            if kind is None:
                continue
            recv = dotted_text(call.func.value) or ""
            if kind == "ring":
                # only ring-ish receivers poll frames
                if not any(h in recv.lower() for h in ("ring", "_in", "_out")):
                    continue
                # the view is the last element of the returned tuple
                names = names[-1:]
            for var in names:
                yield var, kind, recv, node.lineno


def _fence_lines(fn_node: ast.AST, var: str, kind: str, recv: str) -> list[int]:
    out = []
    for node in ast.walk(fn_node):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        attr = node.func.attr
        node_recv = dotted_text(node.func.value) or ""
        if kind == "ring" and attr == "consume" and node_recv == recv:
            out.append(node.lineno)
        elif kind == "landing":
            if attr == "finish_landing":
                out.append(node.lineno)
            elif attr == "release" and node_recv == var:
                out.append(node.lineno)
    return out


def check_function(fn_node, sf, symbols, findings: list[Finding]) -> None:
    for var, kind, recv, line in _tainted_assigns(fn_node):
        fences = _fence_lines(fn_node, var, kind, recv)
        first_fence = min(fences) if fences else None
        for node in ast.walk(fn_node):
            # store-escape: attribute/subscript assignment of the view
            if isinstance(node, ast.Assign) and _mentions(node.value, var):
                if node.lineno <= line:
                    continue
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        findings.append(
                            Finding(
                                checker=CHECKER,
                                path=sf.rel,
                                line=node.lineno,
                                symbol=symbols.get(node.lineno, ""),
                                message=(
                                    f"'{var}' (a {kind}-fenced view from "
                                    f"{recv or 'the buffer'}.{_src_name(kind)}) "
                                    "is stored outside its delivery window; "
                                    "copy it instead, or hold the backing "
                                    "buffer and re-derive the view"
                                ),
                            )
                        )
            # container-escape: .append(view) / .add / .put
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _CONTAINER_SINKS
                and node.lineno > line
                and any(_mentions(a, var) for a in node.args)
            ):
                findings.append(
                    Finding(
                        checker=CHECKER,
                        path=sf.rel,
                        line=node.lineno,
                        symbol=symbols.get(node.lineno, ""),
                        message=(
                            f"'{var}' (a {kind}-fenced view) escapes into a "
                            f"container via .{node.func.attr}(); the fence "
                            "cannot protect it there"
                        ),
                    )
                )
            # use-after-fence
            if (
                first_fence is not None
                and isinstance(node, ast.Name)
                and node.id == var
                and node.lineno > first_fence
            ):
                findings.append(
                    Finding(
                        checker=CHECKER,
                        path=sf.rel,
                        line=node.lineno,
                        symbol=symbols.get(node.lineno, ""),
                        message=(
                            f"'{var}' used after its fence on line "
                            f"{first_fence} ({_fence_name(kind)}); the "
                            "memory may already be republished"
                        ),
                    )
                )


def _mentions(node: ast.AST, var: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == var for sub in ast.walk(node)
    )


def _src_name(kind: str) -> str:
    return {"delivery": "segments()", "landing": "begin_landing()", "ring": "poll()"}[
        kind
    ]


def _fence_name(kind: str) -> str:
    return {
        "delivery": "delivery fence",
        "landing": "finish_landing/release",
        "ring": "consume()",
    }[kind]


def check(project: Project, cg=None) -> list[Finding]:
    findings: list[Finding] = []
    for sf in project.files:
        if sf.rel.endswith(_EXEMPT_SUFFIXES):
            continue
        symbols = enclosing_symbols(sf.tree)
        for node in ast.walk(sf.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                check_function(node, sf, symbols, findings)
    return findings
