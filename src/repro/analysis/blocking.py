"""no-block-in-poller: poller/input-handler threads must never block.

PR 6's two-poller deadlock proof rests on one rule: the procdev
progress poller and the smdev input handler only ever *try* — a full
outbound ring defers, it never waits.  This checker makes the rule
structural:

1. find thread entry points — ``threading.Thread(target=..., name=...)``
   where the name contains ``poller`` or ``input-handler`` (the same
   thread-role names the watchdog sees in stall snapshots);
2. close over the call graph from those entries;
3. flag every reachable call to an unbounded blocking primitive:
   blocking ring ``push``, ``time.sleep``, untimed ``Condition.wait`` /
   ``Event.wait`` / ``join()``, untimed ``acquire()`` on a lock outside
   the classified hierarchy, blocking socket ops, and untimed queue
   ``get``.

Designed-blocking sites (the bounded doorbell in ``Backoff.wait``, a
handler blocking on its *own* inbox) carry inline
``# reprolint: allow[no-block-in-poller] -- why`` waivers; an allow on
a *call site* line prunes that edge, so the deliberate
``fork_rendezvous_writer=False`` ablation can be waived at the inline
call without hiding new blocking paths.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import CallGraph, FunctionInfo, dotted_text
from repro.analysis.core import Finding, Project
from repro.analysis.locks import classify_lock, iter_calls, _local_lock_bindings

CHECKER = "no-block-in-poller"

_ROLES = ("poller", "input-handler")

#: fully-resolved project callees that block by contract
_BLOCKING_QNAMES = {
    "repro.shm.ring.SpscRing.push": "blocking ring push (use try_push / defer)",
    "repro.shm.ring.RingSet.push": "blocking ring push (use try_push / defer)",
}

_SOCKET_METHODS = frozenset(
    {"accept", "connect", "recv", "recv_into", "sendall", "sendmsg"}
)
_UNAMBIGUOUS_SOCKET = frozenset({"accept", "sendall", "sendmsg"})


def _const_str(node: ast.AST) -> str:
    """Concatenated constant parts of a string/f-string expression."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        return "".join(
            v.value
            for v in node.values
            if isinstance(v, ast.Constant) and isinstance(v.value, str)
        )
    return ""


def _has_timeout(call: ast.Call) -> bool:
    if call.args:
        return True
    return any(kw.arg in ("timeout", "block") for kw in call.keywords)


def find_entries(cg: CallGraph) -> list[tuple[str, str, str, int]]:
    """(entry qname, role, file, line) for every poller-role thread."""
    out: list[tuple[str, str, str, int]] = []
    for fn in cg.functions.values():
        for node in iter_calls(fn.node):
            text = dotted_text(node.func) or ""
            if text.split(".")[-1] != "Thread":
                continue
            target = None
            name = ""
            for kw in node.keywords:
                if kw.arg == "target":
                    target = kw.value
                elif kw.arg == "name":
                    name = _const_str(kw.value)
            role = next((r for r in _ROLES if r in name), None)
            if role is None or target is None:
                continue
            for qname in _resolve_target(cg, fn, target):
                out.append((qname, role, fn.sf.rel, node.lineno))
    return out


def _resolve_target(cg: CallGraph, fn: FunctionInfo, target: ast.AST) -> list[str]:
    if isinstance(target, ast.Attribute):
        recv_t = cg.receiver_type(fn, target.value)
        if recv_t and recv_t in cg.classes:
            return list(cg._dispatch(recv_t, target.attr))
        return []
    if isinstance(target, ast.Name):
        nested = f"{fn.qname}.{target.id}"
        if nested in cg.functions:
            return [nested]
        resolved = cg.resolve_name(fn.module, target.id)
        if resolved in cg.functions:
            return [resolved]
    return []


def direct_blocking_sites(
    cg: CallGraph, fn: FunctionInfo
) -> list[tuple[int, str]]:
    """(line, description) of every blocking primitive *fn* calls itself."""
    out: list[tuple[int, str]] = []
    bindings = _local_lock_bindings(fn.node, fn.module)
    resolved_lines: dict[int, set[str]] = {}
    for site in fn.calls:
        resolved_lines.setdefault(site.line, set()).update(site.callees)
        for callee in site.callees:
            if callee in _BLOCKING_QNAMES:
                out.append((site.line, _BLOCKING_QNAMES[callee]))
    for node in iter_calls(fn.node):
        text = dotted_text(node.func) or ""
        method = text.split(".")[-1]
        if text == "time.sleep":
            arg = node.args[0] if node.args else None
            if not (isinstance(arg, ast.Constant) and arg.value == 0):
                out.append((node.lineno, "time.sleep"))
            continue
        if not isinstance(node.func, ast.Attribute):
            continue
        recv_text = dotted_text(node.func.value) or ""
        # calls resolved to project functions are covered by the
        # call-graph closure, not pattern-matched here
        if any(
            node.lineno in resolved_lines
            and c in resolved_lines[node.lineno]
            and c.rsplit(".", 1)[-1] == method
            for c in resolved_lines.get(node.lineno, ())
        ):
            continue
        if method in _SOCKET_METHODS and (
            method in _UNAMBIGUOUS_SOCKET or "sock" in recv_text
        ):
            out.append((node.lineno, f"blocking socket op .{method}()"))
        elif method == "wait" and not _has_timeout(node):
            out.append((node.lineno, "untimed .wait()"))
        elif method == "join" and not node.args and not node.keywords:
            out.append((node.lineno, "untimed .join()"))
        elif method == "get" and not _has_timeout(node):
            lowered = recv_text.lower()
            if any(h in lowered for h in ("queue", "inbox", "box", "_q")):
                out.append((node.lineno, "blocking queue get"))
        elif method == "acquire" and not _has_timeout(node):
            if classify_lock(node.func.value, fn.module, bindings) is None:
                out.append((node.lineno, "untimed acquire on unclassified lock"))
    return out


def _suppressed_edges(cg: CallGraph) -> set[tuple[str, int, str]]:
    out: set[tuple[str, int, str]] = set()
    for q, fn in cg.functions.items():
        for site in fn.calls:
            sup = fn.sf.suppressions.get(site.line)
            if sup is not None and sup.justified and sup.covers(CHECKER):
                for callee in site.callees:
                    out.add((q, site.line, callee))
    return out


def _render_path(
    cg: CallGraph, path: list[tuple[str, int, str]], entry: str
) -> str:
    if not path:
        return _short(entry)
    hops = [_short(path[0][0])]
    for caller, line, callee in path:
        hops.append(_short(callee))
    return " -> ".join(hops)


def _short(qname: str) -> str:
    parts = qname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qname


def check(project: Project, cg: CallGraph) -> list[Finding]:
    entries = find_entries(cg)
    if not entries:
        return []
    blocked = _suppressed_edges(cg)
    roots = [q for q, _, _, _ in entries]
    reachable = cg.callees_closure(roots, blocked_edges=blocked)
    findings: list[Finding] = []
    roles = {}
    for q, role, _, _ in entries:
        roles.setdefault(q, role)
    for q in sorted(reachable):
        fn = cg.functions[q]
        sites = direct_blocking_sites(cg, fn)
        if not sites:
            continue
        path = cg.shortest_path(roots, q, blocked_edges=blocked)
        entry = path[0][0] if path else q
        chain = _render_path(cg, path or [], entry)
        role = roles.get(entry, "poller")
        for line, desc in sites:
            if fn.sf.allows(CHECKER, line):
                continue
            findings.append(
                Finding(
                    checker=CHECKER,
                    path=fn.sf.rel,
                    line=line,
                    symbol=q,
                    message=(
                        f"{desc} is reachable from {role} thread entry "
                        f"{_short(entry)} (path: {chain}); poller-role "
                        "threads must only try, never wait"
                    ),
                )
            )
    return findings
