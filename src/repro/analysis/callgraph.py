"""Project-wide symbol table and call graph with light type inference.

This is deliberately a *checker's* call graph, not a compiler's: it
resolves the attribute calls this codebase actually writes —

* ``self.method(...)`` and calls on ``self.attr`` where the attribute's
  class is knowable from ``__init__`` (constructor call, annotated
  parameter assignment, or an explicit annotation);
* calls on annotated parameters and locally constructed objects;
* subscripts of homogeneous containers (``self._shards[i].lock`` where
  ``_shards`` was built as a list of one class);
* abstract-method dispatch: a call through an ``abc.abstractmethod``
  (or a base whose subclasses override the method) fans out to every
  project override, so ``self.transport.write(...)`` reaches the
  SM/NIO/proc/chaos transports.

Unresolvable calls are kept with their dotted source text so pattern
checkers (``time.sleep``, socket ops) can still match them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.core import Project, SourceFile

# A type is either "qname" (instance of project class) or "list:qname".
_LIST = "list:"


def _ann_to_name(node: Optional[ast.AST]) -> Optional[str]:
    """Dotted-name text of an annotation, unwrapping Optional/list."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _ann_to_name(node.value)
        return f"{base}.{node.attr}" if base else None
    if isinstance(node, ast.Subscript):
        head = _ann_to_name(node.value)
        if head in ("Optional", "typing.Optional"):
            return _ann_to_name(node.slice)
        if head in ("list", "List", "typing.List"):
            inner = _ann_to_name(node.slice)
            return f"{_LIST}{inner}" if inner else None
        return head
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # X | None — take the non-None side.
        for side in (node.left, node.right):
            name = _ann_to_name(side)
            if name not in (None, "None"):
                return name
    return None


def dotted_text(node: ast.AST) -> Optional[str]:
    """Source-ish dotted text of a call target (for pattern matching)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_text(node.value)
        return f"{base}.{node.attr}" if base else f"?.{node.attr}"
    if isinstance(node, ast.Subscript):
        base = dotted_text(node.value)
        return f"{base}[]" if base else None
    if isinstance(node, ast.Call):
        base = dotted_text(node.func)
        return f"{base}()" if base else None
    return None


@dataclass
class CallSite:
    line: int
    callees: tuple[str, ...]  # resolved project function qnames
    text: str  # dotted source text, e.g. "self.transport.write"
    node: ast.Call


@dataclass
class FunctionInfo:
    qname: str
    module: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    sf: SourceFile
    cls: Optional["ClassInfo"] = None
    calls: list[CallSite] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.node.name  # type: ignore[union-attr]


@dataclass
class ClassInfo:
    qname: str
    module: str
    node: ast.ClassDef
    sf: SourceFile
    base_names: list[str] = field(default_factory=list)  # resolved qnames
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)
    subclasses: list[str] = field(default_factory=list)


class CallGraph:
    """Symbol tables plus resolved call edges for a :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: simple class name -> qnames (for annotation resolution)
        self.class_names: dict[str, list[str]] = {}
        #: per-module import map: module -> {local name -> target dotted}
        self.imports: dict[str, dict[str, str]] = {}
        self._collect_symbols()
        self._link_classes()
        self._infer_attr_types()
        self._collect_calls()

    # ------------------------------------------------------------------
    # pass 1: symbols

    def _collect_symbols(self) -> None:
        for sf in self.project.files:
            module = self.project.module_name(sf)
            imports: dict[str, str] = {}
            self.imports[module] = imports
            is_pkg = sf.rel.endswith("__init__.py")
            for node in sf.tree.body:
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        imports[alias.asname or alias.name.split(".")[0]] = alias.name
                elif isinstance(node, ast.ImportFrom):
                    target_mod = node.module or ""
                    if node.level:
                        # resolve `from .x import y` against this
                        # module's package
                        anchor = module.split(".")
                        if not is_pkg:
                            anchor = anchor[:-1]
                        if node.level > 1:
                            anchor = anchor[: len(anchor) - (node.level - 1)]
                        target_mod = ".".join(
                            anchor + ([target_mod] if target_mod else [])
                        )
                    if not target_mod:
                        continue
                    for alias in node.names:
                        imports[alias.asname or alias.name] = (
                            f"{target_mod}.{alias.name}"
                        )
            self._collect_scope(sf, module, sf.tree, prefix=module, cls=None)

    def _collect_scope(
        self,
        sf: SourceFile,
        module: str,
        node: ast.AST,
        prefix: str,
        cls: Optional[ClassInfo],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                qname = f"{prefix}.{child.name}"
                info = ClassInfo(qname=qname, module=module, node=child, sf=sf)
                self.classes[qname] = info
                self.class_names.setdefault(child.name, []).append(qname)
                self._collect_scope(sf, module, child, qname, info)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{prefix}.{child.name}"
                fn = FunctionInfo(
                    qname=qname, module=module, node=child, sf=sf, cls=cls
                )
                self.functions[qname] = fn
                if cls is not None and prefix == cls.qname:
                    cls.methods[child.name] = fn
                # Nested defs live under the function's qname; they are
                # NOT methods of the enclosing class.
                self._collect_scope(sf, module, child, qname, cls=None)

    # ------------------------------------------------------------------
    # pass 2: class linking

    def resolve_name(self, module: str, name: str) -> Optional[str]:
        """Resolve a dotted *name* used in *module* to a project qname."""
        if name in self.classes or name in self.functions:
            return name
        head, _, rest = name.partition(".")
        imports = self.imports.get(module, {})
        if head in imports:
            target = imports[head] + (f".{rest}" if rest else "")
            if target in self.classes or target in self.functions:
                return target
            # from repro.xdev.protocol import Transport -> target is the
            # qname already; fall through to simple-name match below.
            name = target.rsplit(".", 1)[-1] if not rest else name
        local = f"{module}.{name}"
        if local in self.classes or local in self.functions:
            return local
        simple = name.rsplit(".", 1)[-1]
        candidates = self.class_names.get(simple, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _link_classes(self) -> None:
        for info in self.classes.values():
            for base in info.node.bases:
                text = dotted_text(base)
                if not text:
                    continue
                resolved = self.resolve_name(info.module, text)
                if resolved and resolved in self.classes:
                    info.base_names.append(resolved)
                    self.classes[resolved].subclasses.append(info.qname)

    def mro(self, qname: str) -> list[ClassInfo]:
        out: list[ClassInfo] = []
        seen: set[str] = set()
        stack = [qname]
        while stack:
            q = stack.pop(0)
            if q in seen or q not in self.classes:
                continue
            seen.add(q)
            info = self.classes[q]
            out.append(info)
            stack.extend(info.base_names)
        return out

    def find_method(self, cls_qname: str, name: str) -> Optional[FunctionInfo]:
        for info in self.mro(cls_qname):
            if name in info.methods:
                return info.methods[name]
        return None

    def all_subclasses(self, qname: str) -> list[str]:
        if qname not in self.classes:
            return []
        out: list[str] = []
        stack = list(self.classes[qname].subclasses)
        seen: set[str] = set()
        while stack:
            q = stack.pop()
            if q in seen:
                continue
            seen.add(q)
            out.append(q)
            stack.extend(self.classes[q].subclasses)
        return out

    # ------------------------------------------------------------------
    # pass 3: attribute types

    def _infer_attr_types(self) -> None:
        for info in self.classes.values():
            for method in info.methods.values():
                params = self._param_types(method)
                for node in ast.walk(method.node):
                    target = None
                    value = None
                    ann = None
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, ast.AnnAssign):
                        target, value, ann = node.target, node.value, node.annotation
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    t = None
                    if ann is not None:
                        name = _ann_to_name(ann)
                        t = self._type_from_name(info.module, name)
                    if t is None and value is not None:
                        t = self._infer_expr_type(info.module, value, params)
                    if t is not None:
                        info.attr_types.setdefault(target.attr, t)

    def _param_types(self, fn: FunctionInfo) -> dict[str, str]:
        out: dict[str, str] = {}
        args = fn.node.args  # type: ignore[union-attr]
        for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            name = _ann_to_name(a.annotation)
            t = self._type_from_name(fn.module, name)
            if t is not None:
                out[a.arg] = t
        if fn.cls is not None:
            out.setdefault("self", fn.cls.qname)
        return out

    def _type_from_name(self, module: str, name: Optional[str]) -> Optional[str]:
        if not name:
            return None
        if name.startswith(_LIST):
            inner = self._type_from_name(module, name[len(_LIST):])
            return f"{_LIST}{inner}" if inner else None
        resolved = self.resolve_name(module, name)
        if resolved in self.classes:
            return resolved
        return None

    def _infer_expr_type(
        self, module: str, expr: ast.AST, env: dict[str, str]
    ) -> Optional[str]:
        if isinstance(expr, ast.Call):
            text = dotted_text(expr.func)
            if text:
                resolved = self.resolve_name(module, text)
                if resolved in self.classes:
                    return resolved
            return None
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, (ast.List, ast.Tuple)):
            elts = expr.elts
            types = {self._infer_expr_type(module, e, env) for e in elts}
            types.discard(None)
            if len(types) == 1:
                return f"{_LIST}{types.pop()}"
            return None
        if isinstance(expr, ast.ListComp):
            t = self._infer_expr_type(module, expr.elt, env)
            return f"{_LIST}{t}" if t else None
        if isinstance(expr, ast.IfExp):
            t = self._infer_expr_type(module, expr.body, env)
            return t or self._infer_expr_type(module, expr.orelse, env)
        return None

    # ------------------------------------------------------------------
    # pass 4: call sites

    def _collect_calls(self) -> None:
        for fn in list(self.functions.values()):
            self._collect_calls_in(fn)

    def _nested_locals(self, fn: FunctionInfo) -> dict[str, str]:
        out = {}
        for child in ast.iter_child_nodes(fn.node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out[child.name] = f"{fn.qname}.{child.name}"
        return out

    def _local_env(self, fn: FunctionInfo) -> dict[str, str]:
        env = self._param_types(fn)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and target.id not in env:
                    t = self._infer_expr_type(fn.module, node.value, env)
                    if t is None and isinstance(
                        node.value, (ast.Attribute, ast.Subscript)
                    ):
                        # engine = self._engine / shard = self._shards[i]
                        t = self.receiver_type(fn, node.value, env)
                    if t is not None:
                        env[target.id] = t
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                name = _ann_to_name(node.annotation)
                t = self._type_from_name(fn.module, name)
                if t is not None:
                    env.setdefault(node.target.id, t)
        return env

    def receiver_type(
        self, fn: FunctionInfo, node: ast.AST, env: Optional[dict[str, str]] = None
    ) -> Optional[str]:
        """Best-effort type of an expression inside *fn*."""
        if env is None:
            env = self._local_env(fn)
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Attribute):
            base_t = self.receiver_type(fn, node.value, env)
            if base_t and base_t in self.classes:
                for c in self.mro(base_t):
                    if node.attr in c.attr_types:
                        return c.attr_types[node.attr]
            return None
        if isinstance(node, ast.Subscript):
            base_t = self.receiver_type(fn, node.value, env)
            if base_t and base_t.startswith(_LIST):
                return base_t[len(_LIST):]
            return None
        if isinstance(node, ast.Call):
            return self._infer_expr_type(fn.module, node, env)
        return None

    def _dispatch(self, cls_qname: str, method: str) -> tuple[str, ...]:
        """Resolve a method call on *cls_qname*, fanning out overrides."""
        found = self.find_method(cls_qname, method)
        targets: list[str] = []
        if found is not None:
            targets.append(found.qname)
        # Fan out to subclass overrides when the base either lacks the
        # method, declares it abstract, or is subclassed at all (the
        # static receiver type may be the base of the runtime object).
        for sub in self.all_subclasses(cls_qname):
            m = self.classes[sub].methods.get(method)
            if m is not None:
                targets.append(m.qname)
        return tuple(dict.fromkeys(targets))

    def _collect_calls_in(self, fn: FunctionInfo) -> None:
        env = self._local_env(fn)
        nested = self._nested_locals(fn)

        class V(ast.NodeVisitor):
            def __init__(v) -> None:
                v.sites: list[CallSite] = []

            def visit_FunctionDef(v, node: ast.FunctionDef) -> None:
                pass  # nested defs collected as their own FunctionInfo

            visit_AsyncFunctionDef = visit_FunctionDef

            def visit_Lambda(v, node: ast.Lambda) -> None:
                pass  # lambda bodies run later, on an unknown thread

            def visit_Call(v, node: ast.Call) -> None:
                v.generic_visit(node)
                text = dotted_text(node.func) or "?"
                callees: tuple[str, ...] = ()
                if isinstance(node.func, ast.Name):
                    name = node.func.id
                    if name in nested:
                        callees = (nested[name],)
                    else:
                        resolved = self.resolve_name(fn.module, name)
                        if resolved in self.functions:
                            callees = (resolved,)
                        elif resolved in self.classes:
                            init = self.find_method(resolved, "__init__")
                            if init is not None:
                                callees = (init.qname,)
                elif isinstance(node.func, ast.Attribute):
                    recv_t = self.receiver_type(fn, node.func.value, env)
                    if recv_t and recv_t in self.classes:
                        callees = self._dispatch(recv_t, node.func.attr)
                    else:
                        # module-qualified project function/class?
                        resolved = self.resolve_name(fn.module, text)
                        if resolved in self.functions:
                            callees = (resolved,)
                v.sites.append(
                    CallSite(
                        line=node.lineno, callees=callees, text=text, node=node
                    )
                )

        visitor = V()
        for stmt in fn.node.body:  # type: ignore[union-attr]
            visitor.visit(stmt)
        fn.calls = visitor.sites

    # ------------------------------------------------------------------
    # queries

    def callees_closure(self, roots: list[str], blocked_edges=None) -> set[str]:
        """All functions reachable from *roots* (roots included)."""
        blocked = blocked_edges or set()
        seen: set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            q = stack.pop()
            if q in seen:
                continue
            seen.add(q)
            fn = self.functions[q]
            for site in fn.calls:
                for callee in site.callees:
                    if (q, site.line, callee) in blocked:
                        continue
                    if callee not in seen:
                        stack.append(callee)
        return seen

    def shortest_path(
        self, roots: list[str], goal: str, blocked_edges=None
    ) -> Optional[list[tuple[str, int, str]]]:
        """BFS path as (caller, line, callee) edges from a root to goal."""
        blocked = blocked_edges or set()
        parents: dict[str, Optional[tuple[str, int, str]]] = {
            r: None for r in roots if r in self.functions
        }
        frontier = list(parents)
        while frontier:
            nxt: list[str] = []
            for q in frontier:
                if q == goal:
                    edges: list[tuple[str, int, str]] = []
                    cur: Optional[str] = q
                    while cur is not None and parents[cur] is not None:
                        edge = parents[cur]
                        assert edge is not None
                        edges.append(edge)
                        cur = edge[0]
                    return list(reversed(edges))
                fn = self.functions.get(q)
                if fn is None:
                    continue
                for site in fn.calls:
                    for callee in site.callees:
                        if (q, site.line, callee) in blocked:
                            continue
                        if callee not in parents:
                            parents[callee] = (q, site.line, callee)
                            nxt.append(callee)
            frontier = nxt
        return None
