"""Core model for reprolint: source files, findings, suppressions.

A :class:`Project` is the parsed set of files under analysis.  Checkers
consume it and emit :class:`Finding` objects; the CLI filters those
through inline ``# reprolint: allow[...]`` directives and the committed
baseline before deciding the exit code.

Inline suppression syntax::

    # reprolint: allow[checker-id] -- justification
    # reprolint: allow[checker-a,checker-b] -- justification

A directive suppresses matching findings on its own line, on the
statement it trails, or — when placed on (or immediately above) a
``def`` line — anywhere in that function.  The justification text is
mandatory: a directive without ``-- why`` is itself reported as a
``bad-suppression`` finding, so every waiver in the tree documents its
reasoning.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional

_ALLOW_RE = re.compile(
    r"#\s*reprolint:\s*allow\[(?P<ids>[^\]]*)\]\s*(?:--\s*(?P<why>.*))?$"
)


@dataclass(frozen=True)
class Finding:
    """One invariant violation at a specific site."""

    checker: str
    path: str  # as given on the command line (normalised, POSIX separators)
    line: int
    symbol: str  # dotted name of the enclosing function/class ('' at module scope)
    message: str
    severity: str = "error"

    def key(self) -> tuple[str, str, str, str]:
        """Line-insensitive identity used for baseline matching.

        Deliberately excludes the line number so a baseline entry
        survives unrelated edits above the finding.
        """
        return (self.checker, self.path, self.symbol, self.message)

    def to_json(self) -> dict:
        return {
            "checker": self.checker,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "severity": self.severity,
        }

    def render(self) -> str:
        sym = f" [{self.symbol}]" if self.symbol else ""
        return f"{self.path}:{self.line}: {self.checker}:{sym} {self.message}"


@dataclass
class Suppression:
    """A parsed inline allow directive."""

    line: int
    checkers: frozenset[str]  # checker ids; "*" allows everything
    justified: bool
    text: str

    def covers(self, checker: str) -> bool:
        return "*" in self.checkers or checker in self.checkers


@dataclass
class SourceFile:
    """One parsed source file plus its suppression map."""

    path: Path
    rel: str
    source: str
    tree: ast.Module
    suppressions: dict[int, Suppression] = field(default_factory=dict)
    #: lines covered by a def-level directive -> that directive's line
    _def_cover: dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------

    def allows(self, checker: str, line: int) -> bool:
        """True if *checker* findings at *line* are suppressed inline.

        An unjustified directive never suppresses — it is reported as
        ``bad-suppression`` and the underlying finding stays live, so
        silencing the checker always costs a written reason.
        """
        sup = self.suppressions.get(line)
        if sup is not None and sup.justified and sup.covers(checker):
            return True
        cover = self._def_cover.get(line)
        if cover is not None:
            sup = self.suppressions.get(cover)
            if sup is not None and sup.justified and sup.covers(checker):
                return True
        return False

    def line_text(self, line: int) -> str:
        lines = self.source.splitlines()
        if 1 <= line <= len(lines):
            return lines[line - 1]
        return ""


def _parse_suppressions(source: str) -> dict[int, Suppression]:
    out: dict[int, Suppression] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _ALLOW_RE.search(text)
        if not m:
            continue
        ids = frozenset(
            part.strip() for part in m.group("ids").split(",") if part.strip()
        )
        why = (m.group("why") or "").strip()
        out[lineno] = Suppression(
            line=lineno, checkers=ids or frozenset({"*"}), justified=bool(why), text=text.strip()
        )
    return out


def _map_def_coverage(sf: SourceFile) -> None:
    """Extend def-line directives to the whole function body.

    A directive on the ``def`` line (or the line just above it, where
    decorators/comments usually live) covers every line of that
    function, so a designed-blocking helper can be waived once.
    """
    for node in ast.walk(sf.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        directive = None
        for cand in (node.lineno, node.lineno - 1):
            if cand in sf.suppressions:
                directive = cand
                break
        if directive is None:
            continue
        end = getattr(node, "end_lineno", node.lineno) or node.lineno
        for line in range(node.lineno, end + 1):
            sf._def_cover.setdefault(line, directive)


def load_file(path: Path, rel: Optional[str] = None) -> SourceFile:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    sf = SourceFile(
        path=path,
        rel=rel if rel is not None else path.as_posix(),
        source=source,
        tree=tree,
        suppressions=_parse_suppressions(source),
    )
    _map_def_coverage(sf)
    return sf


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    seen: set[Path] = set()
    for p in paths:
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if "__pycache__" in f.parts:
                    continue
                r = f.resolve()
                if r not in seen:
                    seen.add(r)
                    yield f
        elif p.suffix == ".py":
            r = p.resolve()
            if r not in seen:
                seen.add(r)
                yield p


class Project:
    """The parsed file set all checkers run against."""

    def __init__(self, files: list[SourceFile]) -> None:
        self.files = files
        self.by_rel = {sf.rel: sf for sf in files}
        self.errors: list[Finding] = []

    @classmethod
    def load(cls, paths: Iterable[Path]) -> "Project":
        files: list[SourceFile] = []
        errors: list[Finding] = []
        for f in iter_python_files(paths):
            rel = _relativize(f)
            try:
                files.append(load_file(f, rel))
            except SyntaxError as exc:
                errors.append(
                    Finding(
                        checker="parse-error",
                        path=rel,
                        line=exc.lineno or 1,
                        symbol="",
                        message=f"cannot parse: {exc.msg}",
                    )
                )
        project = cls(files)
        project.errors = errors
        return project

    # ------------------------------------------------------------------

    def module_name(self, sf: SourceFile) -> str:
        """Dotted module name, anchored at the ``repro`` package root.

        Files outside a ``repro`` package root (fixtures, scripts) get
        their stem as a flat module name — good enough for a call
        graph that only needs distinct keys.
        """
        parts = Path(sf.rel).with_suffix("").parts
        if "repro" in parts:
            parts = parts[parts.index("repro"):]
        else:
            parts = (parts[-1],)
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts) or Path(sf.rel).stem

    def suppression_findings(self) -> list[Finding]:
        """Unjustified directives are findings themselves."""
        out = []
        for sf in self.files:
            for sup in sf.suppressions.values():
                if not sup.justified:
                    out.append(
                        Finding(
                            checker="bad-suppression",
                            path=sf.rel,
                            line=sup.line,
                            symbol="",
                            message=(
                                "allow directive without a justification "
                                "(write `# reprolint: allow[id] -- why`)"
                            ),
                        )
                    )
        return out


def _relativize(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def enclosing_symbols(tree: ast.Module) -> dict[int, str]:
    """Map every line to the dotted name of its innermost def/class."""
    out: dict[int, str] = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                name = f"{prefix}.{child.name}" if prefix else child.name
                end = getattr(child, "end_lineno", child.lineno) or child.lineno
                for line in range(child.lineno, end + 1):
                    out[line] = name
                visit(child, name)
            else:
                visit(child, prefix)

    visit(tree, "")
    return out
