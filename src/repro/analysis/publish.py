"""publish-after-write: ring slot payloads are written before publish.

The SPSC rings in :mod:`repro.shm.ring` synchronise two processes with
nothing but two cursors in shared memory: the producer may touch a
slot only before bumping ``tail``; the consumer may touch it only
before bumping ``head``.  The entire correctness of the channel is one
ordering rule — **every payload store dominates the publish store**.

This checker verifies the rule lexically inside every function of a
ring module (`repro/shm/ring.py` and any fixture module named like a
ring): a write into the mapped view (``self._view[...] = ...`` or
``pack_into(self._view, ...)``) that appears *after* a cursor publish
(``self._set_tail(...)`` / ``self._set_head(...)``) in the same
function is a violation.  The cursor accessors themselves are exempt —
they are the publish.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import dotted_text
from repro.analysis.core import Finding, Project, enclosing_symbols

CHECKER = "publish-after-write"

_PUBLISH_METHODS = frozenset({"_set_tail", "_set_head"})


def _is_ring_file(rel: str) -> bool:
    return rel.replace("\\", "/").endswith("shm/ring.py") or "ring" in rel.rsplit(
        "/", 1
    )[-1]


def _payload_store_line(node: ast.AST) -> int | None:
    """Line of a store into the mapped view, if *node* is one."""
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                base = dotted_text(target.value) or ""
                if "view" in base or "_buf" in base:
                    return node.lineno
    if isinstance(node, ast.Call):
        func_text = dotted_text(node.func) or ""
        if func_text.endswith("pack_into") and node.args:
            first = dotted_text(node.args[0]) or ""
            if "view" in first or "_buf" in first:
                return node.lineno
    return None


def _publish_lines(fn_node: ast.AST) -> list[int]:
    out = []
    for node in ast.walk(fn_node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _PUBLISH_METHODS
        ):
            out.append(node.lineno)
    return out


def check(project: Project, cg=None) -> list[Finding]:
    findings: list[Finding] = []
    for sf in project.files:
        if not _is_ring_file(sf.rel):
            continue
        symbols = enclosing_symbols(sf.tree)
        for fn in ast.walk(sf.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if fn.name in _PUBLISH_METHODS:
                continue  # the accessors ARE the publish store
            publishes = _publish_lines(fn)
            if not publishes:
                continue
            first_publish = min(publishes)
            for node in ast.walk(fn):
                line = _payload_store_line(node)
                if line is not None and line > first_publish:
                    findings.append(
                        Finding(
                            checker=CHECKER,
                            path=sf.rel,
                            line=line,
                            symbol=symbols.get(line, fn.name),
                            message=(
                                "slot payload store follows the cursor "
                                f"publish on line {first_publish}; the "
                                "consumer may already own this slot — "
                                "complete all payload writes before "
                                "publishing the cursor"
                            ),
                        )
                    )
    return findings
