"""reprolint — static analysis for this codebase's concurrency invariants.

The runtime already *observes* its invariants dynamically: the torture
watchdog tracks lock order and stuck progress, the pools warn about
leaked buffers at shutdown, and procdev's counters expose deferred
pushes.  All of that fires after the bug is written.  This package
checks the same invariants **statically**, at review time, from the
AST:

``lock-order``
    ``with``/``acquire()`` nesting against the canonical hierarchy in
    :mod:`repro.xdev.locknames` (the watchdog's lock-graph vocabulary).
``no-block-in-poller``
    nothing reachable from a procdev poller or smdev input-handler
    entry point may call an unbounded blocking primitive.
``segment-escape``
    views from ``Buffer.segments()`` / ``begin_landing`` /
    ``rendezvous_landing`` / ``SpscRing.poll`` must not outlive their
    delivery fence (``finish_landing`` / ``consume``).
``pool-balance``
    every pool/arena ``acquire`` must reach a ``release`` (or transfer
    ownership) on all paths, including exception edges.
``publish-after-write``
    in :mod:`repro.shm.ring`, slot-payload stores must precede the
    cursor publish store.

Run it with ``python -m repro.analysis [--json] [--baseline FILE]
[--diff REF] [paths...]``; see ``docs/analysis.md``.
"""

from __future__ import annotations

from repro.analysis.core import Finding, Project, SourceFile

__all__ = ["Finding", "Project", "SourceFile", "run_checkers", "CHECKERS"]


def run_checkers(project: Project, checkers=None) -> list[Finding]:
    """Run *checkers* (default: all) over *project*; sorted findings."""
    from repro.analysis.cli import run_checkers as _run

    return _run(project, checkers)


def __getattr__(name: str):
    if name == "CHECKERS":
        from repro.analysis.cli import CHECKERS

        return CHECKERS
    raise AttributeError(name)
