"""pool-balance: every pool/arena acquire must be exception-safe.

The pools (:class:`repro.buffer.pool.BufferPool` / ``RawPool``) and the
shared-memory :class:`repro.shm.arena.SegmentArena` only warn about
leaks at shutdown — long after the error path that dropped the buffer.
This checker makes the discipline lexical.  For every

    v = <pool>.acquire(...)

where ``<pool>`` is a pool-ish receiver (``pool``, ``_pool``,
``raw_pool``, ``arena``, ``_arena``, ``DEFAULT_POOL``), it requires:

* **liveness** — ``v`` must be mentioned again at all (released, stored
  somewhere that outlives the function, returned, or captured by a
  closure); an acquire whose result is never used is a definite leak;
* **exception-edge coverage** — if the *same function* retains release
  responsibility (it contains a ``release(v)`` / ``v.free()`` /
  ``v.release()`` anywhere, including inside handlers or closures),
  then the acquire must be protected: either the acquire sits inside a
  ``try`` whose handler/``finally`` releases ``v``, or such a ``try``
  is the statement immediately after it.  Anything that can raise
  between the acquire and the protected region leaks the buffer.

Functions that *transfer* ownership (store the buffer into an object,
hand it to a finisher closure, return it) are trusted — exception
safety of the transfer itself is the callee's contract.  That keeps
the checker quiet on the deliberate ownership handoffs (receive
finishers, unexpected-message storage) while catching the
gather-before-protect pattern this audit actually found.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.callgraph import dotted_text
from repro.analysis.core import Finding, Project, enclosing_symbols

CHECKER = "pool-balance"

_POOLISH = frozenset({"pool", "_pool", "raw_pool", "arena", "_arena"})


def _is_pool_acquire(call: ast.Call) -> bool:
    if not (isinstance(call.func, ast.Attribute) and call.func.attr == "acquire"):
        return False
    recv = dotted_text(call.func.value) or ""
    last = recv.split(".")[-1]
    return last in _POOLISH or "POOL" in last


def _releases_var(node: ast.AST, var: str) -> bool:
    """Does *node* contain a release/free of *var* (closures included)?"""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        if isinstance(sub.func, ast.Attribute):
            if sub.func.attr in ("release", "free"):
                if (
                    isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id == var
                ):
                    return True
                if any(
                    isinstance(a, ast.Name) and a.id == var for a in sub.args
                ):
                    return True
    return False


def _mentions_var(node: ast.AST, var: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == var for sub in ast.walk(node)
    )


class _Block:
    """A statement list plus the path of blocks above it."""

    def __init__(self, stmts: list[ast.stmt], parent: Optional["_Block"]) -> None:
        self.stmts = stmts
        self.parent = parent


def _iter_blocks(fn_node: ast.AST):
    """Yield (block, stmt, index) for every statement, with parentage."""

    def walk(stmts: list[ast.stmt], parent: Optional[_Block]):
        block = _Block(stmts, parent)
        for i, s in enumerate(stmts):
            yield block, s, i
            if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            for attr in ("body", "orelse", "finalbody"):
                child = getattr(s, attr, None)
                if child:
                    yield from walk(child, block)
            for h in getattr(s, "handlers", []):
                yield from walk(h.body, block)

    yield from walk(fn_node.body, None)


def _protecting_tries(fn_node: ast.AST, var: str) -> list[ast.Try]:
    """Try statements whose handler or finally releases *var*."""
    out = []
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Try):
            guarded = list(node.finalbody)
            for h in node.handlers:
                guarded.extend(h.body)
            if any(_releases_var(s, var) for s in guarded):
                out.append(node)
    return out


def _stmt_contains(outer: ast.stmt, inner: ast.stmt) -> bool:
    return any(sub is inner for sub in ast.walk(outer))


def check_function(fn_node, sf, symbols, findings: list[Finding]) -> None:
    acquires: list[tuple[ast.stmt, str, str]] = []  # (stmt, var, pool text)
    for block, stmt, i in _iter_blocks(fn_node):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name) and isinstance(stmt.value, ast.Call):
                if _is_pool_acquire(stmt.value):
                    recv = dotted_text(stmt.value.func.value) or "pool"
                    acquires.append((stmt, target.id, recv))

    for acq_stmt, var, pool in acquires:
        later = [
            n
            for n in ast.walk(fn_node)
            if isinstance(n, ast.Name)
            and n.id == var
            and n.lineno > acq_stmt.lineno
        ]
        sym = symbols.get(acq_stmt.lineno, "")
        if not later:
            findings.append(
                Finding(
                    checker=CHECKER,
                    path=sf.rel,
                    line=acq_stmt.lineno,
                    symbol=sym,
                    message=(
                        f"'{var}' acquired from {pool} is never released, "
                        "stored, returned, or transferred — a definite leak"
                    ),
                )
            )
            continue
        has_release = any(
            _releases_var(s, var)
            for s in ast.walk(fn_node)
            if isinstance(s, ast.stmt) and s is not acq_stmt
        )
        if not has_release:
            continue  # ownership transferred; callee's contract
        tries = _protecting_tries(fn_node, var)
        protected = False
        gap_end = None
        for block, stmt, i in _iter_blocks(fn_node):
            if stmt is not acq_stmt:
                continue
            # (a) acquire already inside a protecting try's body?
            for t in tries:
                if any(_stmt_contains(s, acq_stmt) or s is acq_stmt for s in t.body):
                    protected = True
            if protected:
                break
            # (b) the next sibling statement is a protecting try?
            rest = block.stmts[i + 1:]
            if rest and isinstance(rest[0], ast.Try) and rest[0] in tries:
                protected = True
                break
            # otherwise: find where protection (or the release) begins
            for s in rest:
                if s in tries or _releases_var(s, var):
                    gap_end = s.lineno
                    break
            break
        if not protected:
            where = (
                f"; lines {acq_stmt.lineno + 1}..{gap_end - 1} can raise and "
                "leak it"
                if gap_end is not None and gap_end > acq_stmt.lineno + 1
                else ""
            )
            findings.append(
                Finding(
                    checker=CHECKER,
                    path=sf.rel,
                    line=acq_stmt.lineno,
                    symbol=sym,
                    message=(
                        f"'{var}' acquired from {pool} is released in this "
                        "function but the acquire is not covered by a "
                        f"try/except-or-finally that releases it{where}"
                    ),
                )
            )


def check(project: Project, cg=None) -> list[Finding]:
    findings: list[Finding] = []
    for sf in project.files:
        symbols = enclosing_symbols(sf.tree)
        for node in ast.walk(sf.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                check_function(node, sf, symbols, findings)
    return findings
