"""reprolint command line: ``python -m repro.analysis [options] [paths]``.

Exit codes: 0 — clean (modulo baseline and inline allows); 1 — at
least one live finding; 2 — usage error, unparseable baseline, or a
``--diff`` ref that does not resolve.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Optional

from repro.analysis import baseline as baseline_mod
from repro.analysis import blocking, locks, pools, publish, segments
from repro.analysis.callgraph import CallGraph
from repro.analysis.core import Finding, Project

#: checker id -> module (each exposes ``check(project, callgraph)``)
CHECKERS = {
    locks.CHECKER: locks,
    blocking.CHECKER: blocking,
    segments.CHECKER: segments,
    pools.CHECKER: pools,
    publish.CHECKER: publish,
}


def run_checkers(project: Project, checkers=None) -> list[Finding]:
    """All findings: parse errors, bad suppressions, checker output —
    already filtered through inline allows, deduped and sorted."""
    selected = CHECKERS if checkers is None else {
        k: v for k, v in CHECKERS.items() if k in checkers
    }
    cg = CallGraph(project)
    findings: list[Finding] = list(project.errors)
    findings.extend(project.suppression_findings())
    for mod in selected.values():
        findings.extend(mod.check(project, cg))
    out: list[Finding] = []
    seen: set[tuple] = set()
    for f in findings:
        sf = project.by_rel.get(f.path)
        if sf is not None and sf.allows(f.checker, f.line):
            continue
        ident = (f.checker, f.path, f.line, f.message)
        if ident in seen:
            continue
        seen.add(ident)
        out.append(f)
    out.sort(key=lambda f: (f.path, f.line, f.checker, f.message))
    return out


# ----------------------------------------------------------------------
# --diff support


def resolve_ref(ref: str, cwd: Optional[Path] = None) -> Optional[str]:
    """Resolve *ref* to a commit sha, or None if it doesn't exist."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--verify", "--quiet", f"{ref}^{{commit}}"],
            capture_output=True,
            text=True,
            cwd=cwd,
        )
    except OSError:
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def changed_files(ref: str, cwd: Optional[Path] = None) -> Optional[set[str]]:
    """Paths changed vs *ref* (repo-relative, POSIX), or None on bad ref."""
    sha = resolve_ref(ref, cwd)
    if sha is None:
        return None
    proc = subprocess.run(
        ["git", "diff", "--name-only", sha, "--"],
        capture_output=True,
        text=True,
        cwd=cwd,
    )
    if proc.returncode != 0:
        return None
    return {line.strip() for line in proc.stdout.splitlines() if line.strip()}


def _filter_diff(findings: list[Finding], changed: set[str]) -> list[Finding]:
    return [f for f in findings if f.path in changed]


# ----------------------------------------------------------------------


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reprolint: static checks for this tree's concurrency "
        "and zero-copy invariants",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files/directories to analyse (default: src/repro)",
    )
    parser.add_argument("--json", action="store_true", help="JSON output")
    parser.add_argument(
        "--out", type=Path, help="also write the JSON report to this file"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        help=f"baseline file (default: ./{baseline_mod.DEFAULT_NAME} if present)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--diff",
        metavar="REF",
        help="report only findings in files changed vs this git ref "
        "(the whole tree is still parsed, so the call graph stays sound)",
    )
    parser.add_argument(
        "--checker",
        action="append",
        choices=sorted(CHECKERS),
        help="run only this checker (repeatable)",
    )
    args = parser.parse_args(argv)

    paths = args.paths
    if not paths:
        default = Path("src/repro")
        paths = [default] if default.exists() else [Path(".")]

    project = Project.load(paths)
    findings = run_checkers(project, args.checker)

    changed: Optional[set[str]] = None
    if args.diff:
        changed = changed_files(args.diff)
        if changed is None:
            print(
                f"reprolint: --diff ref {args.diff!r} does not resolve to a "
                "commit",
                file=sys.stderr,
            )
            return 2
        findings = _filter_diff(findings, changed)

    baseline_path = args.baseline
    if baseline_path is None:
        default_bl = Path(baseline_mod.DEFAULT_NAME)
        baseline_path = default_bl if default_bl.exists() else None

    if args.write_baseline:
        target = args.baseline or Path(baseline_mod.DEFAULT_NAME)
        target.write_text(baseline_mod.render(findings), encoding="utf-8")
        print(f"reprolint: wrote {len(findings)} suppression(s) to {target}")
        return 0

    baselined: list[Finding] = []
    stale: list[dict] = []
    if baseline_path is not None:
        try:
            entries = baseline_mod.load(baseline_path)
        except baseline_mod.BaselineError as exc:
            print(f"reprolint: {exc}", file=sys.stderr)
            return 2
        findings, baselined, stale = baseline_mod.apply(findings, entries)
        if args.diff and changed is not None:
            stale = []  # a partial view can't judge staleness

    report = {
        "version": 1,
        "paths": [str(p) for p in paths],
        "diff_ref": args.diff,
        "findings": [f.to_json() for f in findings],
        "baselined": [f.to_json() for f in baselined],
        "stale_baseline_entries": stale,
    }
    if args.out:
        args.out.write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        for f in findings:
            print(f.render())
        for e in stale:
            print(
                "reprolint: warning: stale baseline entry "
                f"({e['checker']} @ {e['path']} [{e['symbol']}]) — remove it"
            )
        print(
            f"reprolint: {len(findings)} finding(s), "
            f"{len(baselined)} baselined, {len(project.files)} file(s)"
        )
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
