"""Communication tracing — a debugging aid for message-passing codes.

Wraps a Device so every operation (send/recv post, completion, probe)
is recorded as a timestamped event; traces can be dumped as JSON or
summarized.  Useful for the classic MPI debugging questions: *who sent
what to whom, in what order, and which receive never matched?*

Usage::

    from repro.trace import TracingDevice

    def main(env):
        env.device = TracingDevice(env.device)   # or wrap before building
        ...

    # or, with the launcher:
    devices, pids = make_job("smdev", 2)
    traced = TracingDevice(devices[0])

Events carry: monotonic timestamp, operation, peer uid, tag, context,
size in bytes, and the request's completion time once known.
"""

from __future__ import annotations

import json
import threading
import time
import warnings
from dataclasses import asdict, dataclass
from typing import Any, Optional

from repro.buffer import Buffer
from repro.mpjdev.request import Request, Status
from repro.xdev.device import Device, DeviceConfig
from repro.xdev.processid import ProcessID


@dataclass
class TraceEvent:
    """One recorded communication event."""

    seq: int
    op: str
    time: float
    peer: Optional[int] = None
    tag: Optional[int] = None
    context: Optional[int] = None
    size: Optional[int] = None
    completed_at: Optional[float] = None
    #: Probe/peek outcome: True when a matching message (or completed
    #: request) was found, False when not, None for other operations.
    matched: Optional[bool] = None

    #: Operations that complete later (non-blocking) or whose event
    #: stays open while the caller is blocked inside them.
    _COMPLETABLE = frozenset(
        {"isend", "irecv", "issend", "send", "ssend", "recv"}
    )

    @property
    def pending(self) -> bool:
        return self.completed_at is None and self.op in TraceEvent._COMPLETABLE


class TracingDevice(Device):
    """A Device decorator recording every operation."""

    def __init__(self, inner: Device, sink: Any = None) -> None:
        self.inner = inner
        self._events: list[TraceEvent] = []
        self._lock = threading.Lock()
        self._seq = 0
        self._t0 = time.monotonic()
        #: Optional JSONL export (:class:`repro.obs.tracing.TraceWriter`).
        #: Auto-created from ``REPRO_TRACE`` when the inner device's
        #: rank is known (now, or at :meth:`init`).
        self._sink = sink if sink is not None else self._make_sink()

    def _make_sink(self) -> Any:
        from repro.obs.tracing import writer_for

        try:
            rank = self.inner.id().uid
        except Exception:  # noqa: BLE001 - not initialized yet
            return None
        return writer_for(rank, label="mpi")

    def clock(self) -> float:
        """Seconds since this tracer started (the events' time base)."""
        return time.monotonic() - self._t0

    # ------------------------------------------------------------------
    # recording

    def _record(
        self,
        op: str,
        peer: ProcessID | int | None = None,
        tag: Optional[int] = None,
        context: Optional[int] = None,
        size: Optional[int] = None,
    ) -> TraceEvent:
        with self._lock:
            self._seq += 1
            event = TraceEvent(
                seq=self._seq,
                op=op,
                time=time.monotonic() - self._t0,
                peer=peer.uid if isinstance(peer, ProcessID) else peer,
                tag=tag,
                context=context,
                size=size,
            )
            self._events.append(event)
        sink = self._sink
        if sink is not None:
            name = f"mpi.{op}.post" if op in TraceEvent._COMPLETABLE else f"mpi.{op}"
            sink.emit(
                name,
                id=event.seq,
                peer=event.peer,
                tag=tag,
                ctx=context,
                size=size,
            )
        return event

    def _sink_complete(self, event: TraceEvent) -> None:
        sink = self._sink
        if sink is not None:
            sink.emit(f"mpi.{event.op}.complete", id=event.seq, size=event.size)

    def _track_completion(self, request: Request, event: TraceEvent) -> Request:
        def on_done(_req: Request) -> None:
            event.completed_at = time.monotonic() - self._t0
            if event.size is None:
                # Receives learn their size only at match time; capture
                # it so summary()'s bytes_received is not undercounted.
                try:
                    status = _req.test()
                except Exception:  # noqa: BLE001 - failed request
                    status = None
                if status is not None:
                    event.size = status.size
            self._sink_complete(event)

        request.add_completion_listener(on_done)
        return request

    # ------------------------------------------------------------------
    # trace access

    def events(self) -> list[TraceEvent]:
        with self._lock:
            return list(self._events)

    def pending_events(self) -> list[TraceEvent]:
        """Operations started but never completed — the deadlock list."""
        return [e for e in self.events() if e.pending]

    def summary(self) -> dict[str, Any]:
        events = self.events()
        by_op: dict[str, int] = {}
        bytes_sent = 0
        bytes_received = 0
        probe_hits = 0
        probe_misses = 0
        for e in events:
            by_op[e.op] = by_op.get(e.op, 0) + 1
            if e.size and e.op in ("isend", "send", "issend", "ssend"):
                bytes_sent += e.size
            elif e.size and e.op in ("irecv", "recv"):
                bytes_received += e.size
            if e.op in ("iprobe", "probe", "peek"):
                if e.matched:
                    probe_hits += 1
                elif e.matched is False:
                    probe_misses += 1
        out: dict[str, Any] = {
            "events": len(events),
            "by_op": by_op,
            "bytes_sent": bytes_sent,
            "bytes_received": bytes_received,
            "probe_hits": probe_hits,
            "probe_misses": probe_misses,
            "pending": len([e for e in events if e.pending]),
        }
        stats = self.copy_stats
        if stats is not None:
            out["copy_stats"] = stats.snapshot()
        return out

    def dump_json(self) -> str:
        return json.dumps([asdict(e) for e in self.events()], indent=2)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    # ------------------------------------------------------------------
    # Device API — delegate + record

    device_name = "traced"

    def init(self, args: DeviceConfig) -> list[ProcessID]:
        self._record("init")
        pids = self.inner.init(args)
        if self._sink is None:
            self._sink = self._make_sink()
        return pids

    def id(self) -> ProcessID:
        return self.inner.id()

    def finish(self) -> None:
        self._record("finish")
        self.inner.finish()
        sink = self._sink
        if sink is not None:
            sink.close()

    def get_send_overhead(self) -> int:
        return self.inner.get_send_overhead()

    def get_recv_overhead(self) -> int:
        return self.inner.get_recv_overhead()

    def isend(self, buf: Buffer, dest: ProcessID, tag: int, context: int) -> Request:
        event = self._record("isend", dest, tag, context, buf.size)
        return self._track_completion(self.inner.isend(buf, dest, tag, context), event)

    def send(self, buf: Buffer, dest: ProcessID, tag: int, context: int) -> None:
        event = self._record("send", dest, tag, context, buf.size)
        self.inner.send(buf, dest, tag, context)
        event.completed_at = time.monotonic() - self._t0

    def issend(self, buf: Buffer, dest: ProcessID, tag: int, context: int) -> Request:
        event = self._record("issend", dest, tag, context, buf.size)
        return self._track_completion(self.inner.issend(buf, dest, tag, context), event)

    def ssend(self, buf: Buffer, dest: ProcessID, tag: int, context: int) -> None:
        event = self._record("ssend", dest, tag, context, buf.size)
        self.inner.ssend(buf, dest, tag, context)
        event.completed_at = time.monotonic() - self._t0

    def irecv(self, buf: Buffer, src: ProcessID | int, tag: int, context: int) -> Request:
        event = self._record("irecv", src, tag, context)
        return self._track_completion(self.inner.irecv(buf, src, tag, context), event)

    def recv(self, buf: Buffer, src: ProcessID | int, tag: int, context: int) -> Status:
        event = self._record("recv", src, tag, context)
        status = self.inner.recv(buf, src, tag, context)
        event.completed_at = time.monotonic() - self._t0
        event.size = status.size
        self._sink_complete(event)
        return status

    def iprobe(self, src: ProcessID | int, tag: int, context: int) -> Status | None:
        event = self._record("iprobe", src, tag, context)
        status = self.inner.iprobe(src, tag, context)
        event.matched = status is not None
        if status is not None:
            event.size = status.size
        return status

    def probe(self, src: ProcessID | int, tag: int, context: int) -> Status:
        event = self._record("probe", src, tag, context)
        status = self.inner.probe(src, tag, context)
        event.completed_at = time.monotonic() - self._t0
        event.matched = True
        event.size = status.size
        return status

    def peek(self, timeout: float | None = None) -> Request:
        event = self._record("peek")
        try:
            request = self.inner.peek(timeout=timeout)
        except Exception:
            event.completed_at = time.monotonic() - self._t0
            event.matched = False
            raise
        event.completed_at = time.monotonic() - self._t0
        event.matched = True
        return request

    #: Expose the inner engine for white-box users.
    @property
    def engine(self):
        return self.inner.engine  # type: ignore[attr-defined]

    @property
    def copy_stats(self):
        """The inner device's CopyStats, or None for non-engine devices."""
        try:
            return self.engine.copy_stats
        except Exception:
            return None

    @property
    def metrics(self):
        """The inner device's MetricsRegistry, or None if it has none."""
        try:
            return self.engine.metrics
        except Exception:
            return None

    def introspect(self) -> dict[str, Any]:
        """The inner device's live state, plus this tracer's counts."""
        out = dict(self.inner.introspect())
        with self._lock:
            out["tracer_events"] = len(self._events)
        out["tracer_pending"] = len(self.pending_events())
        return out

    # ------------------------------------------------------------------
    # stall triage

    def detect_stalled(self, min_age_s: float = 1.0) -> list[TraceEvent]:
        """Pending operations older than *min_age_s* — likely deadlocks.

        The classic triage question after a hang: which receives were
        posted long ago and never matched?  Returns the stale events,
        oldest first.
        """
        now = self.clock()
        stale = [e for e in self.pending_events() if now - e.time >= min_age_s]
        return sorted(stale, key=lambda e: e.time)


def detect_stalled(
    traced: "TracingDevice", min_age_s: float = 1.0
) -> list[TraceEvent]:
    """Deprecated alias for :meth:`TracingDevice.detect_stalled`."""
    warnings.warn(
        "repro.trace.detect_stalled(traced, ...) is deprecated; call "
        "traced.detect_stalled(...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return traced.detect_stalled(min_age_s=min_age_s)
