"""Critical-path analysis over the merged message DAG.

A job's wall time is governed by its longest dependency chain, not by
any per-rank total.  With flow stitching (:mod:`repro.obs.merge`) the
merged timeline *is* a DAG: send/recv spans are nodes, matched flows
are cross-rank edges, and program order on each rank file supplies the
local edges.  :func:`critical_path` walks that DAG backwards from the
latest-completing span, at each step following the predecessor that
finished last — the one that actually gated progress — and attributes
every microsecond of the chain to one of three buckets:

``wire``
    Time inside a span whose gating predecessor was the matched send
    on another rank (the message was in flight / being transferred),
    plus time inside send spans themselves (serialization, channel
    locks, the transport write).
``wait``
    Time inside a recv span gated by *local* program order — the
    receive was posted and idle long before the data mattered, i.e.
    the rank was blocked on its own earlier work finishing.
``compute``
    Gaps between spans on one rank where no traced operation ran —
    the application was doing real work (or at least not messaging).

The result is printed by ``python -m repro.obs report --critical-path``
and embedded in the ``--json`` metric snapshot for regression diffing.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import defaultdict
from typing import Any, Optional

from repro.obs.merge import FlowEdge, Span

#: Chains longer than this are truncated (defensive bound; a real
#: trace's chain length is bounded by its span count anyway).
_MAX_STEPS = 100_000


def critical_path(
    spans: list[Span], edges: list[FlowEdge]
) -> dict[str, Any]:
    """The longest dependency chain ending at the last-finishing span.

    Returns a dict with ``total_us``, the ``wait_us``/``wire_us``/
    ``compute_us`` attribution, and ``steps`` — the chain in
    chronological order, each step naming its span and how its time
    was attributed.  Empty traces yield ``{"total_us": 0, "steps": []}``.
    """
    ops = [s for s in spans if s.base in ("send", "recv")]
    if not ops:
        return {
            "total_us": 0.0,
            "wait_us": 0.0,
            "wire_us": 0.0,
            "compute_us": 0.0,
            "steps": [],
        }

    # Matched send for each recv span (identity-keyed: spans are not
    # hashable by value and several may share ids across files).
    send_for_recv: dict[int, Span] = {
        id(e.recv): e.send for e in edges
    }
    # Per-file spans sorted by end time, for "latest span ending before
    # this one started" lookups.
    by_file: dict[int, list[Span]] = defaultdict(list)
    for span in ops:
        by_file[span.file_idx].append(span)
    for file_spans in by_file.values():
        file_spans.sort(key=lambda s: s.end_us)
    ends: dict[int, list[float]] = {
        f: [s.end_us for s in file_spans] for f, file_spans in by_file.items()
    }

    def local_pred(span: Span) -> Optional[Span]:
        file_spans = by_file[span.file_idx]
        idx = bisect_left(ends[span.file_idx], span.start_us)
        # idx is the first span ending at/after our start; the one
        # before it is the latest to finish strictly before we began.
        while idx > 0:
            cand = file_spans[idx - 1]
            if cand is not span and cand.end_us <= span.start_us:
                return cand
            idx -= 1
        return None

    current = max(ops, key=lambda s: s.end_us)
    steps: list[dict[str, Any]] = []
    totals = {"wait_us": 0.0, "wire_us": 0.0, "compute_us": 0.0}

    def bucket_of(span: Span, via: str) -> str:
        if via == "flow":
            return "wire"  # gated by the remote send: transfer time
        if span.base == "send":
            return "wire"  # serialization + channel lock + write
        return "wait"  # recv gated by local order: posted and idle

    for _ in range(min(len(ops) + 1, _MAX_STEPS)):
        flow_pred = send_for_recv.get(id(current))
        local = local_pred(current)
        # A predecessor only explains our completion if it finished
        # before we did; pick the latest-finishing one — that is the
        # dependency that actually gated this span.
        candidates: list[tuple[str, Span]] = []
        if flow_pred is not None and flow_pred.end_us < current.end_us:
            candidates.append(("flow", flow_pred))
        if local is not None and local.end_us < current.end_us:
            candidates.append(("local", local))
        if not candidates:
            # Chain head: the whole span is its own explanation.
            bucket = bucket_of(current, "none")
            totals[f"{bucket}_us"] += current.dur_us
            steps.append(_step(current, "start", {bucket: current.dur_us}))
            break
        via, pred = max(candidates, key=lambda c: c[1].end_us)
        gap = max(0.0, current.start_us - pred.end_us)
        in_span = current.end_us - max(current.start_us, pred.end_us)
        attribution: dict[str, float] = {}
        if gap > 0:
            attribution["compute"] = gap
            totals["compute_us"] += gap
        bucket = bucket_of(current, via)
        attribution[bucket] = attribution.get(bucket, 0.0) + in_span
        totals[f"{bucket}_us"] += in_span
        steps.append(_step(current, via, attribution))
        current = pred

    steps.reverse()
    total = sum(totals.values())
    return {
        "total_us": round(total, 3),
        "wait_us": round(totals["wait_us"], 3),
        "wire_us": round(totals["wire_us"], 3),
        "compute_us": round(totals["compute_us"], 3),
        "steps": steps,
    }


def _step(span: Span, via: str, attribution: dict[str, float]) -> dict[str, Any]:
    return {
        "base": span.base,
        "rank": span.rank,
        "file": span.file_idx,
        "peer": span.peer,
        "tag": span.tag,
        "size": span.size,
        "proto": span.proto or "eager",
        "flow": f"{span.fs if span.fs is not None else span.rank}:{span.fq}"
        if span.fq
        else None,
        "start_us": round(span.start_us, 3),
        "end_us": round(span.end_us, 3),
        "via": via,
        "attribution": {k: round(v, 3) for k, v in attribution.items()},
    }


def format_critical_path(crit: dict[str, Any], max_steps: int = 30) -> str:
    """Render :func:`critical_path`'s result for the report CLI."""
    lines = []
    total = crit["total_us"]
    lines.append(
        f"critical path: {total:.1f}µs over {len(crit['steps'])} step(s)"
    )
    if total > 0:
        lines.append(
            "  attribution: "
            f"wait {crit['wait_us']:.1f}µs ({crit['wait_us'] / total * 100:.0f}%), "
            f"wire {crit['wire_us']:.1f}µs ({crit['wire_us'] / total * 100:.0f}%), "
            f"compute {crit['compute_us']:.1f}µs "
            f"({crit['compute_us'] / total * 100:.0f}%)"
        )
    shown = crit["steps"][-max_steps:]
    if len(shown) < len(crit["steps"]):
        lines.append(f"  … {len(crit['steps']) - len(shown)} earlier step(s)")
    for step in shown:
        attr = " ".join(
            f"{k}={v:.1f}µs" for k, v in step["attribution"].items()
        )
        flow = f" flow={step['flow']}" if step.get("flow") else ""
        lines.append(
            f"  [{step['start_us']:>12.1f} → {step['end_us']:>12.1f}] "
            f"rank{step['rank']} {step['base']}/{step['proto']} "
            f"peer={step['peer']} size={step['size']}{flow} "
            f"via={step['via']} ({attr})"
        )
    return "\n".join(lines)
