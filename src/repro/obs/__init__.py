"""Cross-layer observability: metrics, per-rank tracing, introspection.

Three cooperating pieces (see docs/observability.md):

* :mod:`repro.obs.metrics` — per-device :class:`MetricsRegistry`
  (counters, gauges, log2 histograms) threaded through every layer;
  ``REPRO_METRICS=0`` turns recording into no-ops.
* :mod:`repro.obs.tracing` — bounded-ring JSONL trace export per rank,
  enabled by ``REPRO_TRACE=<dir>`` (engines pick it up at init, so the
  launcher and daemons trace every rank automatically).
* :mod:`repro.obs.introspect` — stall snapshots (pending ops with
  ages + live queue depths) on watchdog trigger or SIGUSR1.

``python -m repro.obs merge <dir>`` merges the per-rank JSONL files
into one clock-aligned timeline (Chrome ``trace_event`` JSON + a text
report).
"""

from repro.obs.introspect import (
    install_stall_handler,
    stall_snapshot,
    write_stall_file,
)
from repro.obs.merge import merge_directory
from repro.obs.metrics import (
    METRICS_ENV,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    make_registry,
    merge_snapshots,
    metrics_enabled,
)
from repro.obs.tracing import (
    TRACE_ENV,
    TraceWriter,
    dump_metrics,
    trace_dir,
    writer_for,
)

__all__ = [
    "METRICS_ENV",
    "TRACE_ENV",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "TraceWriter",
    "dump_metrics",
    "install_stall_handler",
    "make_registry",
    "merge_directory",
    "merge_snapshots",
    "metrics_enabled",
    "stall_snapshot",
    "trace_dir",
    "write_stall_file",
    "writer_for",
]
