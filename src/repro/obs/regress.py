"""Metric snapshots and regression diffing for CI gating.

``python -m repro.obs report DIR --json OUT`` condenses a merge
analysis into a small, stable JSON snapshot: span-latency aggregates
per (op, protocol), the protocol-stage table, the flow-stitching
summary and the critical-path attribution.  A committed snapshot is a
*baseline*; ``python -m repro.obs report --regress OLD.json NEW.json``
diffs two snapshots and flags every latency-ish metric (keys ending in
``_us``) that grew by more than the threshold (default 20%).

The diff is advisory by design — CI runs it ``continue-on-error`` so a
shared-runner hiccup warns instead of blocking — but ``--fail-on-
regress`` upgrades regressions to a non-zero exit for local gating.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional

SNAPSHOT_VERSION = 1

#: Relative growth beyond which a latency metric counts as regressed.
DEFAULT_THRESHOLD = 0.20

#: Ignore sub-microsecond-scale noise: a mean that went 0.4µs → 0.9µs
#: is scheduler jitter, not a regression worth a CI warning.
MIN_ABS_DELTA_US = 5.0


def build_snapshot(analysis: Any) -> dict[str, Any]:
    """A regression-comparable snapshot of a :class:`MergeAnalysis`."""
    from repro.obs.critical import critical_path
    from repro.obs.merge import _stage_table

    span_agg: dict[str, dict[str, Any]] = {}
    groups: dict[str, list[float]] = {}
    for span in analysis.spans:
        if span.base not in ("send", "recv"):
            continue
        groups.setdefault(f"{span.base}/{span.proto or 'eager'}", []).append(
            span.dur_us
        )
    for key, vals in sorted(groups.items()):
        vals.sort()
        span_agg[key] = {
            "count": len(vals),
            "mean_us": round(sum(vals) / len(vals), 2),
            "p50_us": round(vals[len(vals) // 2], 2),
            "max_us": round(vals[-1], 2),
        }

    crit = critical_path(analysis.spans, analysis.edges)
    flows = analysis.flows
    return {
        "version": SNAPSHOT_VERSION,
        "spans": span_agg,
        "stages": _stage_table(analysis.spans),
        "flows": {
            "sends": flows.sends,
            "recvs": flows.recvs,
            "paired": flows.paired,
            "pair_ratio": round(flows.pair_ratio, 4),
            "dropped": flows.dropped,
            "unmatched": flows.unmatched,
        },
        "critical_path": {
            "total_us": crit["total_us"],
            "wait_us": crit["wait_us"],
            "wire_us": crit["wire_us"],
            "compute_us": crit["compute_us"],
            "steps": len(crit["steps"]),
        },
    }


def _numeric_leaves(doc: Any, prefix: str = "") -> dict[str, float]:
    out: dict[str, float] = {}
    if isinstance(doc, dict):
        for key, value in doc.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(_numeric_leaves(value, path))
    elif isinstance(doc, bool):
        pass
    elif isinstance(doc, (int, float)):
        out[prefix] = float(doc)
    return out


def compare_snapshots(
    old: dict[str, Any],
    new: dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    min_abs_delta_us: float = MIN_ABS_DELTA_US,
) -> tuple[list[str], list[str]]:
    """Diff two snapshots; returns ``(report_lines, regressions)``.

    Only latency metrics (leaf keys ending ``_us``, excluding the
    ``max_us`` outliers) can regress; counters and ratios are reported
    when they change but never flagged.
    """
    old_leaves = _numeric_leaves(old)
    new_leaves = _numeric_leaves(new)
    lines: list[str] = []
    regressions: list[str] = []
    for path in sorted(set(old_leaves) | set(new_leaves)):
        before = old_leaves.get(path)
        after = new_leaves.get(path)
        if before is None or after is None:
            lines.append(
                f"  {path}: "
                + ("added" if before is None else "removed")
                + f" (now {after if after is not None else '-'})"
            )
            continue
        if before == after:
            continue
        rel = (after - before) / before if before else float("inf")
        gating = (
            path.endswith("_us")
            and not path.endswith("max_us")
            and after - before >= min_abs_delta_us
        )
        marker = ""
        if gating and rel > threshold:
            marker = f"  <-- REGRESSION (> {threshold * 100:.0f}%)"
            regressions.append(path)
        if marker or abs(rel) > 0.05:
            lines.append(
                f"  {path}: {before:g} -> {after:g} ({rel * +100:+.1f}%){marker}"
            )
    if not lines:
        lines.append("  (no significant changes)")
    return lines, regressions


def load_snapshot(path: Path | str) -> dict[str, Any]:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def write_snapshot(
    snapshot: dict[str, Any], path: Path | str
) -> Optional[Path]:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(snapshot, indent=1, sort_keys=True) + "\n",
                   encoding="utf-8")
    return out
