"""Lock-cheap metrics: counters, gauges, log2-bucketed histograms.

The registry is the cross-layer measurement substrate the ROADMAP's
perf work needs: every device-stack layer (MPI collectives, mpjdev's
Waitany, the protocol engine, the matching queues, the transports, the
buffer pools) reports into one :class:`MetricsRegistry` per device, and
one :meth:`MetricsRegistry.snapshot` call folds them all into a plain
dict — engine protocol counters, matching hit rates, copy/move
accounting (:class:`~repro.buffer.pool.CopyStats` lives *in* the
registry — the single source of truth), and live queue depths.

Design constraints, in order:

* **Cheap when off.** ``REPRO_METRICS=0`` swaps in :class:`NullMetrics`
  whose instruments are shared no-op singletons; instrumented hot paths
  pre-bind instrument references at engine construction, so the
  disabled cost is one no-op method call.  The overhead guard in
  ``tests/obs/test_overhead.py`` compares the two configurations.
* **Exact when on.** Every instrument takes its own tiny lock around
  the increment, so counters are deterministic under the torture
  fixtures' seeded interleavings — a GIL-racy ``+= 1`` would make the
  "same seed, same counts" assertion flaky by construction.
* **Allocation-free observation.** A histogram observation is one int
  ``bit_length`` and two adds; buckets are a fixed 64-slot list
  (enough for any value below 2**63 — sizes in bytes, latencies in
  microseconds).
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Iterable, Optional

from repro.buffer.pool import CopyStats

#: Kill switch: ``REPRO_METRICS=0`` (or ``off``/``false``/``no``)
#: disables instrument recording process-wide (the registry still
#: exists and still owns a live CopyStats — copy accounting is part of
#: the datapath contract, not an optional metric).
METRICS_ENV = "REPRO_METRICS"

_FALSEY = frozenset({"0", "off", "false", "no"})

_NBUCKETS = 64


def metrics_enabled() -> bool:
    """True unless ``REPRO_METRICS`` disables recording."""
    return os.environ.get(METRICS_ENV, "").strip().lower() not in _FALSEY


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value: either set explicitly or callback-backed."""

    __slots__ = ("name", "_lock", "_value", "_fn")

    def __init__(self, name: str, fn: Optional[Callable[[], Any]] = None) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value: Any = 0
        self._fn = fn

    def set(self, value: Any) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> Any:
        if self._fn is not None:
            try:
                return self._fn()
            except Exception:  # noqa: BLE001 - a dead callback is a 0 gauge
                return None
        with self._lock:
            return self._value


class Histogram:
    """A log2-bucketed distribution of non-negative integers.

    Bucket *i* holds values ``v`` with ``v.bit_length() == i`` — i.e.
    ``2**(i-1) <= v < 2**i`` — and bucket 0 holds zero.  That makes an
    observation branch-free and keeps 64 buckets enough for any byte
    count or microsecond latency this codebase will ever see.
    """

    __slots__ = ("name", "_lock", "_buckets", "_count", "_sum", "_min", "_max")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._buckets = [0] * _NBUCKETS
        self._count = 0
        self._sum = 0
        self._min: Optional[int] = None
        self._max = 0

    def observe(self, value: float) -> None:
        v = int(value)
        if v < 0:
            v = 0
        idx = v.bit_length()
        if idx >= _NBUCKETS:  # pragma: no cover - > 2**63 observation
            idx = _NBUCKETS - 1
        with self._lock:
            self._buckets[idx] += 1
            self._count += 1
            self._sum += v
            if self._min is None or v < self._min:
                self._min = v
            if v > self._max:
                self._max = v

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @staticmethod
    def bucket_label(idx: int) -> str:
        return "0" if idx == 0 else f"<{1 << idx}"

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            buckets = {
                self.bucket_label(i): n
                for i, n in enumerate(self._buckets)
                if n
            }
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._min is not None else 0,
                "max": self._max,
                "buckets": buckets,
            }


class _NullInstrument:
    """Shared no-op stand-in for Counter/Gauge/Histogram when disabled."""

    __slots__ = ()
    name = "null"
    value = 0
    count = 0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: Any) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {"count": 0, "sum": 0, "min": 0, "max": 0, "buckets": {}}


_NULL = _NullInstrument()


def labeled_name(name: str, labels: dict[str, str]) -> str:
    """Render a labeled instrument key, Prometheus-style.

    ``labeled_name("coll.bcast", {"algorithm": "binomial"})`` →
    ``"coll.bcast{algorithm=binomial}"``.  Labels sort by key so the
    same label set always yields the same instrument.
    """
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Per-device instrument registry + snapshot assembler.

    ``attach(name, fn)`` registers a *section callback* — a zero-arg
    callable returning a dict folded into :meth:`snapshot` under
    *name*.  The engine uses this to surface its protocol ``stats``,
    the matching queues' hit counters, and live queue depths without
    the registry holding references into engine internals.
    """

    enabled = True

    def __init__(self, label: str = "") -> None:
        self.label = label
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._sections: dict[str, Callable[[], Any]] = {}
        #: The device's datapath copy/move accounting — owned here so
        #: trace summaries, bench cells and metrics snapshots all read
        #: the same object (see docs/performance.md).
        self.copy_stats = CopyStats()

    # -- instrument factories (get-or-create) --------------------------

    def counter(
        self, name: str, labels: Optional[dict[str, str]] = None
    ) -> Counter:
        if labels:
            name = labeled_name(name, labels)
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str, fn: Optional[Callable[[], Any]] = None) -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge(name, fn)
            return g

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(name)
            return h

    def attach(self, name: str, fn: Callable[[], Any]) -> None:
        """Fold ``fn()`` into every snapshot under *name*."""
        with self._lock:
            self._sections[name] = fn

    # -- reading --------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            counters = {n: c.value for n, c in sorted(self._counters.items())}
            gauges = {n: g.value for n, g in sorted(self._gauges.items())}
            histograms = {
                n: h.snapshot() for n, h in sorted(self._histograms.items())
            }
            sections = list(self._sections.items())
        out: dict[str, Any] = {
            "label": self.label,
            "enabled": True,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "copy": self.copy_stats.snapshot(),
        }
        for name, fn in sections:
            try:
                out[name] = fn()
            except Exception as exc:  # noqa: BLE001 - section != crash
                out[name] = {"error": repr(exc)}
        return out


class NullMetrics(MetricsRegistry):
    """Disabled registry: instruments are shared no-ops, snapshot is flat.

    Still owns a real :class:`CopyStats` — the zero-copy datapath's
    accounting (asserted by tests, surfaced in BENCH files) is not
    optional instrumentation.
    """

    enabled = False

    def counter(self, name, labels=None):  # type: ignore[override]
        return _NULL

    def gauge(self, name, fn=None):  # type: ignore[override]
        return _NULL

    def histogram(self, name: str) -> Histogram:  # type: ignore[override]
        return _NULL  # type: ignore[return-value]

    def attach(self, name: str, fn: Callable[[], Any]) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "enabled": False,
            "copy": self.copy_stats.snapshot(),
        }


def make_registry(label: str = "") -> MetricsRegistry:
    """A registry honouring the ``REPRO_METRICS`` kill switch."""
    value = os.environ.get(METRICS_ENV, "").strip().lower()
    if value in _FALSEY:
        return NullMetrics(label)
    return MetricsRegistry(label)


def merge_snapshots(snaps: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Fold several :meth:`MetricsRegistry.snapshot` dicts into one.

    Numbers sum (``min``/``max`` keys take min/max instead); nested
    dicts merge recursively; non-numeric scalars keep the first value
    seen.  Used by the bench to combine both ranks of a cell and by
    the merge CLI to aggregate per-rank metrics dumps.
    """
    merged: dict[str, Any] = {}
    for snap in snaps:
        if snap:
            _merge_into(merged, snap)
    return merged


def _merge_into(dst: dict[str, Any], src: dict[str, Any]) -> None:
    for key, value in src.items():
        if key not in dst:
            if isinstance(value, dict):
                dst[key] = {}
                _merge_into(dst[key], value)
            else:
                dst[key] = value
            continue
        old = dst[key]
        if isinstance(old, dict) and isinstance(value, dict):
            _merge_into(old, value)
        elif isinstance(old, bool) or isinstance(value, bool):
            dst[key] = old or value
        elif isinstance(old, (int, float)) and isinstance(value, (int, float)):
            if key == "min":
                dst[key] = min(old, value)
            elif key == "max":
                dst[key] = max(old, value)
            else:
                dst[key] = old + value
        # else: keep the first scalar (labels, strings)
