"""Merge per-rank JSONL traces into one causally stitched timeline.

Backs ``python -m repro.obs merge <dir>``: reads every ``*.jsonl`` the
:class:`~repro.obs.tracing.TraceWriter` wrote, aligns ranks on their
``wall_t0`` anchors, and produces

* Chrome ``trace_event`` JSON (open in ``chrome://tracing`` or
  https://ui.perfetto.dev): one process per rank file, one track per
  thread, ``X`` duration events for each ``<base>.post``/
  ``<base>.complete`` pair, ``i`` instants for the rendezvous stage
  marks (RTS/RTR/data), and ``s``/``f`` *flow events* drawing an arrow
  from each send span to the recv span that consumed its message, and
* a text report: per-peer byte matrix, protocol-stage latency table,
  flow-stitching summary, top span latencies, unmatched receives.

Clock model: ``wall_t0`` anchors give the coarse alignment, then the
*causal* edges correct it.  Every message carries a flow id
``(fs, fq)`` in its frame headers (:mod:`repro.xdev.causal`), stamped
into the trace events, so a send span and the recv span it caused can
be paired exactly — a true happened-before edge.  From the matched
pairs the merge estimates per-file clock offsets (NTP-style: with
edges in both directions between two files, half the difference of
the minimum apparent one-way delays; with one direction, just enough
shift that no recv completes before its send posts) and applies them
to every event, so the merged timeline never shows an effect before
its cause even when rank clocks disagree.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Optional


@dataclass
class RankTrace:
    """One parsed per-rank JSONL file."""

    path: Path
    meta: dict[str, Any]
    events: list[dict[str, Any]]
    fin: dict[str, Any] = field(default_factory=dict)

    @property
    def rank(self) -> int:
        return int(self.meta.get("rank", -1))

    @property
    def label(self) -> str:
        return str(self.meta.get("label", "dev"))

    @property
    def wall_t0(self) -> float:
        return float(self.meta.get("wall_t0", 0.0))


@dataclass
class Span:
    """A paired <base>.post/<base>.complete operation."""

    base: str
    file_idx: int
    rank: int
    label: str
    tid: int
    start_us: float
    dur_us: float
    id: Optional[int] = None
    peer: Optional[int] = None
    tag: Optional[int] = None
    size: Optional[int] = None
    proto: Optional[str] = None
    #: Endpoint the posting thread was bound to (``ep=`` trace field).
    ep: Optional[int] = None
    #: Absolute µs of each stage instant sharing this span's id.
    stages: dict[str, float] = field(default_factory=dict)
    #: Lamport clock at the span's defining event (post for sends,
    #: complete for recvs) — ``lc`` trace field, schema version 2+.
    lc: Optional[int] = None
    #: Causal flow id ``(fs, fq)``: origin engine uid and per-engine
    #: send sequence.  Send spans carry only ``fq`` on the wire (the
    #: origin is the span's own rank); recv spans carry both.
    fs: Optional[int] = None
    fq: Optional[int] = None

    @property
    def end_us(self) -> float:
        return self.start_us + self.dur_us

    def flow_key(self) -> Optional[tuple[str, int, int]]:
        """The stitching key, or None when the span carries no flow."""
        if not self.fq:
            return None
        src = self.fs if self.fs is not None else self.rank
        return (self.label, src, self.fq)

    def shift(self, delta_us: float) -> None:
        """Apply a clock-offset correction to every timestamp."""
        self.start_us += delta_us
        for stage in self.stages:
            self.stages[stage] += delta_us


@dataclass
class FlowEdge:
    """One matched send→recv pair: a happened-before edge."""

    send: Span
    recv: Span

    @property
    def key(self) -> tuple[str, int, int]:
        return self.send.flow_key()  # type: ignore[return-value]


@dataclass
class FlowSummary:
    """How well the directory's sends and recvs stitched together."""

    sends: int = 0
    recvs: int = 0
    paired: int = 0
    #: Recvs whose send span was evicted by the sender's trace ring
    #: (the sender's file reports ``fin.dropped > 0``) — expected loss.
    dropped: int = 0
    #: Recvs with no explanation: no send span and no drops recorded
    #: on the sender's side — a genuine stitching gap.
    unmatched: int = 0
    #: Pre-causal spans (no ``fq`` field): schema v1 traces.
    unversioned: int = 0

    @property
    def pair_ratio(self) -> float:
        return self.paired / self.recvs if self.recvs else 1.0


#: Stage instants folded into the owning span (keyed by the same id).
_SEND_STAGES = ("rts.out", "rtr.in", "rndz.out")
_RECV_STAGES = ("rts.in", "rtr.out", "rndz.in", "eager.in")
_STAGE_EVENTS = frozenset(_SEND_STAGES) | frozenset(_RECV_STAGES)


def load_trace_dir(directory: Path | str) -> list[RankTrace]:
    """Parse every ``*.jsonl`` rank file under *directory*."""
    directory = Path(directory)
    traces: list[RankTrace] = []
    for path in sorted(directory.glob("*.jsonl")):
        meta: dict[str, Any] = {}
        fin: dict[str, Any] = {}
        events: list[dict[str, Any]] = []
        with path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # a torn line loses itself, not the file
                if "meta" in record:
                    meta = record["meta"]
                elif "fin" in record:
                    fin = record["fin"]
                else:
                    events.append(record)
        if meta or events:
            traces.append(RankTrace(path=path, meta=meta, events=events, fin=fin))
    return traces


def build_spans(traces: list[RankTrace]) -> tuple[list[Span], list[dict[str, Any]]]:
    """Pair post/complete events into spans; collect the leftovers.

    Returns ``(spans, unmatched)`` where *unmatched* lists ``.post``
    events that never completed (the deadlock list) annotated with
    their file/rank.
    """
    zero = min((t.wall_t0 for t in traces), default=0.0)
    spans: list[Span] = []
    unmatched: list[dict[str, Any]] = []
    for file_idx, trace in enumerate(traces):
        offset_us = (trace.wall_t0 - zero) * 1e6
        open_posts: dict[tuple[str, Any], dict[str, Any]] = {}
        stage_marks: dict[Any, dict[str, float]] = defaultdict(dict)
        for ev in trace.events:
            name = ev.get("ev", "")
            abs_us = offset_us + float(ev.get("t", 0.0)) * 1e6
            if name in _STAGE_EVENTS:
                if ev.get("id") is not None:
                    stage_marks[ev["id"]][name] = abs_us
                continue
            if name.endswith(".post"):
                base = name[: -len(".post")]
                open_posts[(base, ev.get("id"))] = dict(ev, _abs_us=abs_us)
            elif name.endswith(".complete"):
                base = name[: -len(".complete")]
                post = open_posts.pop((base, ev.get("id")), None)
                if post is None:
                    continue  # post fell out of the ring buffer
                spans.append(
                    Span(
                        base=base,
                        file_idx=file_idx,
                        rank=trace.rank,
                        label=trace.label,
                        tid=int(post.get("tid", 0)),
                        start_us=post["_abs_us"],
                        dur_us=max(abs_us - post["_abs_us"], 0.0),
                        id=post.get("id"),
                        peer=post.get("peer", ev.get("peer")),
                        tag=post.get("tag"),
                        size=post.get("size", ev.get("size")),
                        proto=post.get("proto", ev.get("proto")),
                        ep=post.get("ep"),
                        # Causal context: sends stamp it at post, recvs
                        # only learn their flow at complete time.
                        lc=post.get("lc", ev.get("lc")),
                        fs=post.get("fs", ev.get("fs")),
                        fq=post.get("fq", ev.get("fq")),
                    )
                )
        for (base, _id), post in open_posts.items():
            unmatched.append(
                {
                    "base": base,
                    "rank": trace.rank,
                    "label": trace.label,
                    "file": trace.path.name,
                    "peer": post.get("peer"),
                    "tag": post.get("tag"),
                    "ctx": post.get("ctx"),
                    "posted_at_us": round(post["_abs_us"], 3),
                }
            )
        for span in spans:
            if span.file_idx == file_idx and span.id in stage_marks:
                span.stages.update(stage_marks[span.id])
    return spans, unmatched


# ----------------------------------------------------------------------
# causal flow stitching


def stitch_flows(
    spans: list[Span], traces: Optional[list[RankTrace]] = None
) -> tuple[list[FlowEdge], FlowSummary]:
    """Pair send spans to recv spans by flow id.

    A flow id is unique per engine, so within one job the pairing is
    exact.  A directory holding several jobs of the same label (the
    bench) can reuse ids across engine instances; colliding groups are
    zipped in start-time order — the nearest-in-time interpretation.

    The summary distinguishes a recv whose send event was *dropped* by
    the sender's bounded trace ring (the sender's file finishes with
    ``fin.dropped > 0`` — expected, tunable via REPRO_TRACE_BUFFER)
    from one that is genuinely *unmatched*.
    """
    sends: dict[tuple[str, int, int], list[Span]] = defaultdict(list)
    recvs: dict[tuple[str, int, int], list[Span]] = defaultdict(list)
    summary = FlowSummary()
    for span in spans:
        if span.base not in ("send", "recv"):
            continue
        key = span.flow_key()
        if key is None:
            summary.unversioned += 1
            continue
        if span.base == "send":
            summary.sends += 1
            sends[key].append(span)
        else:
            summary.recvs += 1
            recvs[key].append(span)

    # Ranks whose trace ring evicted events: a missing send span from
    # one of these is loss we can attribute, not a stitching bug.
    lossy_ranks: set[int] = set()
    for trace in traces or []:
        if int(trace.fin.get("dropped", 0)) > 0:
            lossy_ranks.add(trace.rank)

    edges: list[FlowEdge] = []
    for key, recv_group in recvs.items():
        send_group = sorted(sends.get(key, []), key=lambda s: s.start_us)
        recv_group = sorted(recv_group, key=lambda s: s.start_us)
        for send, recv in zip(send_group, recv_group):
            edges.append(FlowEdge(send=send, recv=recv))
            summary.paired += 1
        for recv in recv_group[len(send_group):]:
            if key[1] in lossy_ranks:
                summary.dropped += 1
            else:
                summary.unmatched += 1
    return edges, summary


def estimate_skew(
    traces: list[RankTrace], edges: list[FlowEdge]
) -> list[float]:
    """Per-file clock-offset corrections (µs) from matched flow pairs.

    Causality says a recv span cannot complete before its send span
    posted; the apparent one-way delay of edge ``a→b`` is
    ``recv.end - send.start``.  For each ordered file pair the minimum
    apparent delay ``m`` is collected; with both directions available
    the relative offset is the NTP estimate ``(m_ab - m_ba) / 2``, and
    with only one direction the offset is whatever (if anything) is
    needed to make the minimum delay non-negative.  Offsets propagate
    from file 0 over a BFS spanning tree of the pair graph, then a
    short relaxation pass lifts any file still showing a negative
    residual, so no effect precedes its cause in the merged timeline.
    """
    nfiles = len(traces)
    min_delay: dict[tuple[int, int], float] = {}
    for edge in edges:
        a, b = edge.send.file_idx, edge.recv.file_idx
        if a == b:
            continue
        apparent = edge.recv.end_us - edge.send.start_us
        key = (a, b)
        if key not in min_delay or apparent < min_delay[key]:
            min_delay[key] = apparent

    neighbours: dict[int, set[int]] = defaultdict(set)
    for a, b in min_delay:
        neighbours[a].add(b)
        neighbours[b].add(a)

    offsets = [0.0] * nfiles
    visited = {0} if nfiles else set()
    queue = [0] if nfiles else []
    while queue:
        a = queue.pop(0)
        for b in sorted(neighbours.get(a, ())):
            if b in visited:
                continue
            m_ab = min_delay.get((a, b))
            m_ba = min_delay.get((b, a))
            if m_ab is not None and m_ba is not None:
                delta = (m_ab - m_ba) / 2.0  # b's clock leads a's by delta
            elif m_ab is not None:
                delta = min(m_ab, 0.0)
            else:
                delta = -min(m_ba, 0.0)  # type: ignore[arg-type]
            offsets[b] = offsets[a] - delta
            visited.add(b)
            queue.append(b)

    # Relaxation: raise any file whose corrected min delay is still
    # negative.  Each pass only increases offsets, so it terminates.
    for _ in range(max(nfiles, 1) * 2):
        adjusted = False
        for (a, b), m in min_delay.items():
            residual = m + offsets[b] - offsets[a]
            if residual < 0:
                offsets[b] += -residual
                adjusted = True
        if not adjusted:
            break
    return offsets


def apply_skew(
    traces: list[RankTrace], spans: list[Span], offsets: list[float]
) -> None:
    """Shift spans (and their raw events) by the per-file corrections."""
    for span in spans:
        delta = offsets[span.file_idx] if span.file_idx < len(offsets) else 0.0
        if delta:
            span.shift(delta)
    for file_idx, trace in enumerate(traces):
        delta = offsets[file_idx] if file_idx < len(offsets) else 0.0
        if delta:
            # Instant events are rendered straight from the raw event
            # list; fold the correction into their offsets once.
            trace.meta["skew_us"] = round(delta, 3)


def chrome_trace(
    traces: list[RankTrace],
    spans: list[Span],
    edges: Optional[list[FlowEdge]] = None,
    offsets: Optional[list[float]] = None,
) -> dict[str, Any]:
    """The merged timeline as Chrome ``trace_event`` JSON (dict form)."""
    zero = min((t.wall_t0 for t in traces), default=0.0)
    events: list[dict[str, Any]] = []
    for file_idx, trace in enumerate(traces):
        pid = file_idx
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {
                    "name": f"rank {trace.rank} [{trace.label}]"
                    f" (os pid {trace.meta.get('pid', '?')})"
                },
            }
        )
        for tid, tname in (trace.fin.get("threads") or {}).items():
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": int(tid),
                    "args": {"name": tname},
                }
            )
        offset_us = (trace.wall_t0 - zero) * 1e6
        if offsets is not None and file_idx < len(offsets):
            offset_us += offsets[file_idx]
        for ev in trace.events:
            name = ev.get("ev", "")
            # Stage marks and any other point event (probe, failure,
            # lifecycle) become instants; .post/.complete pairs are
            # already covered by the X spans.
            if name in _STAGE_EVENTS or not (
                name.endswith(".post") or name.endswith(".complete")
            ):
                events.append(
                    {
                        "ph": "i",
                        "name": name,
                        "pid": pid,
                        "tid": int(ev.get("tid", 0)),
                        "ts": round(offset_us + float(ev.get("t", 0.0)) * 1e6, 3),
                        "s": "t",
                        "args": {
                            k: v
                            for k, v in ev.items()
                            if k not in ("t", "tid", "ev")
                        },
                    }
                )
    for span in spans:
        name = span.base
        if span.proto:
            name = f"{span.base} [{span.proto}]"
        events.append(
            {
                "ph": "X",
                "name": name,
                "cat": span.label,
                "pid": span.file_idx,
                "tid": span.tid,
                "ts": round(span.start_us, 3),
                "dur": round(span.dur_us, 3),
                "args": {
                    "id": span.id,
                    "peer": span.peer,
                    "tag": span.tag,
                    "size": span.size,
                    "rank": span.rank,
                    "ep": span.ep,
                    "lc": span.lc,
                    "flow": f"{span.fs if span.fs is not None else span.rank}"
                    f":{span.fq}" if span.fq else None,
                },
            }
        )
    # Flow events: an ``s`` (start) anchored inside the send span and
    # an ``f`` (finish, binding-point "enclosing") inside the recv span
    # draw the causal arrow between them in Perfetto/chrome://tracing.
    # Anchoring at the span midpoints keeps both endpoints strictly
    # inside their slices, which is what the binding rules require.
    for edge in edges or []:
        send, recv = edge.send, edge.recv
        label, src, seq = edge.key
        fid = f"{label}:{src}:{seq}"
        events.append(
            {
                "ph": "s",
                "cat": "flow",
                "name": "msg",
                "id": fid,
                "pid": send.file_idx,
                "tid": send.tid,
                "ts": round(send.start_us + send.dur_us / 2.0, 3),
            }
        )
        events.append(
            {
                "ph": "f",
                "bp": "e",
                "cat": "flow",
                "name": "msg",
                "id": fid,
                "pid": recv.file_idx,
                "tid": recv.tid,
                "ts": round(recv.start_us + recv.dur_us / 2.0, 3),
            }
        )
    events.sort(key=lambda e: e.get("ts", -1.0))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# text report


def _byte_matrix(spans: Iterable[Span]) -> dict[int, dict[int, int]]:
    """sender rank -> receiver rank/uid -> payload bytes (send spans)."""
    matrix: dict[int, dict[int, int]] = defaultdict(lambda: defaultdict(int))
    for span in spans:
        if span.base == "send" and span.size and span.peer is not None:
            matrix[span.rank][span.peer] += span.size
    return matrix


def _stage_table(spans: Iterable[Span]) -> dict[str, dict[str, Any]]:
    """Per (label, proto) aggregate of protocol-stage durations (µs)."""
    agg: dict[str, dict[str, list[float]]] = defaultdict(lambda: defaultdict(list))
    for span in spans:
        if span.base != "send":
            continue
        key = f"{span.label}/{span.proto or 'eager'}"
        end = span.start_us + span.dur_us
        if span.proto == "rndz":
            marks = [("post", span.start_us)]
            for stage in _SEND_STAGES:
                if stage in span.stages:
                    marks.append((stage, span.stages[stage]))
            marks.append(("complete", end))
            for (a, ta), (b, tb) in zip(marks, marks[1:]):
                agg[key][f"{a}→{b}"].append(max(tb - ta, 0.0))
        else:
            agg[key]["post→complete"].append(span.dur_us)
    out: dict[str, dict[str, Any]] = {}
    for key, stages in agg.items():
        out[key] = {
            stage: {
                "count": len(vals),
                "mean_us": round(sum(vals) / len(vals), 2),
                "max_us": round(max(vals), 2),
            }
            for stage, vals in stages.items()
        }
    return out


def _endpoint_table(spans: Iterable[Span]) -> dict[str, dict[str, Any]]:
    """Per (rank, endpoint, op) span-latency aggregate (µs).

    Breaks stage latency down by the posting thread's endpoint so
    ``repro.obs report`` shows whether one endpoint's lock shard is the
    hot one.  Spans from traces predating the ``ep=`` field are
    skipped.
    """
    agg: dict[tuple[int, int, str], list[float]] = defaultdict(list)
    for span in spans:
        if span.ep is None or span.base not in ("send", "recv"):
            continue
        agg[(span.rank, int(span.ep), span.base)].append(span.dur_us)
    out: dict[str, dict[str, Any]] = {}
    for (rank, ep, base), vals in sorted(agg.items()):
        out[f"rank{rank}/ep{ep}/{base}"] = {
            "count": len(vals),
            "mean_us": round(sum(vals) / len(vals), 2),
            "max_us": round(max(vals), 2),
        }
    return out


def text_report(
    traces: list[RankTrace],
    spans: list[Span],
    unmatched: list[dict[str, Any]],
    top_n: int = 10,
    flows: Optional[FlowSummary] = None,
    offsets: Optional[list[float]] = None,
) -> str:
    lines: list[str] = []
    total_events = sum(len(t.events) for t in traces)
    total_dropped = sum(int(t.fin.get("dropped", 0)) for t in traces)
    lines.append(
        f"merged timeline: {len(traces)} rank file(s), {total_events} events, "
        f"{len(spans)} spans, {total_dropped} dropped by ring buffers"
    )
    labels = sorted({t.label for t in traces})
    lines.append(f"devices: {', '.join(labels) if labels else '(none)'}")

    if flows is not None:
        lines.append(
            f"causal flows: {flows.sends} send(s), {flows.recvs} recv(s), "
            f"{flows.paired} paired ({flows.pair_ratio * 100:.1f}%); "
            f"{flows.dropped} dropped by trace rings, "
            f"{flows.unmatched} unmatched"
            + (
                f"; {flows.unversioned} span(s) predate causal tracing"
                if flows.unversioned
                else ""
            )
        )
    if offsets is not None and any(abs(o) > 0.5 for o in offsets):
        lines.append(
            "clock-skew corrections (µs per file): "
            + ", ".join(f"{o:+.1f}" for o in offsets)
        )

    matrix = _byte_matrix(spans)
    lines.append("")
    lines.append("per-peer payload bytes (sender rank -> receiver uid):")
    if not matrix:
        lines.append("  (no completed sends)")
    else:
        receivers = sorted({p for row in matrix.values() for p in row})
        header = "  sender " + "".join(f"{f'->{p}':>14}" for p in receivers)
        lines.append(header)
        for sender in sorted(matrix):
            row = matrix[sender]
            lines.append(
                f"  {sender:>6} "
                + "".join(f"{row.get(p, 0):>14}" for p in receivers)
            )

    lines.append("")
    lines.append("protocol stage spans (µs):")
    stage_table = _stage_table(spans)
    if not stage_table:
        lines.append("  (no send spans)")
    for key in sorted(stage_table):
        lines.append(f"  {key}:")
        for stage, cell in stage_table[key].items():
            lines.append(
                f"    {stage:<22} n={cell['count']:<6} "
                f"mean={cell['mean_us']:>10.2f} max={cell['max_us']:>10.2f}"
            )

    endpoint_table = _endpoint_table(spans)
    if endpoint_table:
        lines.append("")
        lines.append("per-endpoint span latency (µs):")
        for key, cell in endpoint_table.items():
            lines.append(
                f"  {key:<22} n={cell['count']:<6} "
                f"mean={cell['mean_us']:>10.2f} max={cell['max_us']:>10.2f}"
            )

    lines.append("")
    lines.append(f"top {top_n} span latencies:")
    slowest = sorted(spans, key=lambda s: s.dur_us, reverse=True)[:top_n]
    if not slowest:
        lines.append("  (none)")
    for span in slowest:
        lines.append(
            f"  {span.dur_us:>12.2f}µs  {span.base:<6} rank={span.rank} "
            f"peer={span.peer} tag={span.tag} size={span.size} "
            f"proto={span.proto or 'eager'} [{span.label}]"
        )

    recv_unmatched = [u for u in unmatched if u["base"].endswith("recv")]
    lines.append("")
    lines.append(f"unmatched receives: {len(recv_unmatched)}")
    for u in recv_unmatched[:top_n]:
        lines.append(
            f"  rank={u['rank']} peer={u['peer']} tag={u['tag']} "
            f"ctx={u['ctx']} posted_at={u['posted_at_us']}µs [{u['label']}]"
        )
    other_unmatched = len(unmatched) - len(recv_unmatched)
    if other_unmatched:
        lines.append(f"other unmatched operations: {other_unmatched}")
    return "\n".join(lines) + "\n"


@dataclass
class MergeAnalysis:
    """Everything the merge pipeline derives from one trace directory."""

    traces: list[RankTrace]
    spans: list[Span]
    unmatched: list[dict[str, Any]]
    edges: list[FlowEdge]
    flows: FlowSummary
    offsets: list[float]
    chrome: dict[str, Any]
    report: str


def analyze_directory(directory: Path | str, top_n: int = 10) -> MergeAnalysis:
    """The full merge pipeline: load → span-pair → flow-stitch →
    skew-correct → render."""
    traces = load_trace_dir(directory)
    spans, unmatched = build_spans(traces)
    edges, flows = stitch_flows(spans, traces)
    offsets = estimate_skew(traces, edges)
    apply_skew(traces, spans, offsets)
    chrome = chrome_trace(traces, spans, edges=edges, offsets=offsets)
    report = text_report(
        traces, spans, unmatched, top_n=top_n, flows=flows, offsets=offsets
    )
    return MergeAnalysis(
        traces=traces,
        spans=spans,
        unmatched=unmatched,
        edges=edges,
        flows=flows,
        offsets=offsets,
        chrome=chrome,
        report=report,
    )


def merge_directory(
    directory: Path | str, out: Optional[Path | str] = None
) -> tuple[dict[str, Any], str]:
    """Load, merge, and render *directory*; optionally write Chrome JSON.

    Returns ``(chrome_trace_dict, text_report_str)``.
    """
    analysis = analyze_directory(directory)
    if out is not None:
        Path(out).write_text(json.dumps(analysis.chrome) + "\n", encoding="utf-8")
    return analysis.chrome, analysis.report
