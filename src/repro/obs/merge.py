"""Merge per-rank JSONL traces into one clock-aligned timeline.

Backs ``python -m repro.obs merge <dir>``: reads every ``*.jsonl`` the
:class:`~repro.obs.tracing.TraceWriter` wrote, aligns ranks on their
``wall_t0`` anchors, and produces

* Chrome ``trace_event`` JSON (open in ``chrome://tracing`` or
  https://ui.perfetto.dev): one process per rank file, one track per
  thread, ``X`` duration events for each ``<base>.post``/
  ``<base>.complete`` pair and ``i`` instants for the rendezvous stage
  marks (RTS/RTR/data), and
* a text report: per-peer byte matrix, protocol-stage latency table,
  top span latencies, unmatched receives.

Clock model: every event's absolute time is
``(meta.wall_t0 - min(wall_t0)) + event.t`` — within one machine the
wall-clock skew between ranks is far below the microsecond span
resolution this needs, and all current transports are single-host.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Optional


@dataclass
class RankTrace:
    """One parsed per-rank JSONL file."""

    path: Path
    meta: dict[str, Any]
    events: list[dict[str, Any]]
    fin: dict[str, Any] = field(default_factory=dict)

    @property
    def rank(self) -> int:
        return int(self.meta.get("rank", -1))

    @property
    def label(self) -> str:
        return str(self.meta.get("label", "dev"))

    @property
    def wall_t0(self) -> float:
        return float(self.meta.get("wall_t0", 0.0))


@dataclass
class Span:
    """A paired <base>.post/<base>.complete operation."""

    base: str
    file_idx: int
    rank: int
    label: str
    tid: int
    start_us: float
    dur_us: float
    id: Optional[int] = None
    peer: Optional[int] = None
    tag: Optional[int] = None
    size: Optional[int] = None
    proto: Optional[str] = None
    #: Endpoint the posting thread was bound to (``ep=`` trace field).
    ep: Optional[int] = None
    #: Absolute µs of each stage instant sharing this span's id.
    stages: dict[str, float] = field(default_factory=dict)


#: Stage instants folded into the owning span (keyed by the same id).
_SEND_STAGES = ("rts.out", "rtr.in", "rndz.out")
_RECV_STAGES = ("rts.in", "rtr.out", "rndz.in", "eager.in")
_STAGE_EVENTS = frozenset(_SEND_STAGES) | frozenset(_RECV_STAGES)


def load_trace_dir(directory: Path | str) -> list[RankTrace]:
    """Parse every ``*.jsonl`` rank file under *directory*."""
    directory = Path(directory)
    traces: list[RankTrace] = []
    for path in sorted(directory.glob("*.jsonl")):
        meta: dict[str, Any] = {}
        fin: dict[str, Any] = {}
        events: list[dict[str, Any]] = []
        with path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # a torn line loses itself, not the file
                if "meta" in record:
                    meta = record["meta"]
                elif "fin" in record:
                    fin = record["fin"]
                else:
                    events.append(record)
        if meta or events:
            traces.append(RankTrace(path=path, meta=meta, events=events, fin=fin))
    return traces


def build_spans(traces: list[RankTrace]) -> tuple[list[Span], list[dict[str, Any]]]:
    """Pair post/complete events into spans; collect the leftovers.

    Returns ``(spans, unmatched)`` where *unmatched* lists ``.post``
    events that never completed (the deadlock list) annotated with
    their file/rank.
    """
    zero = min((t.wall_t0 for t in traces), default=0.0)
    spans: list[Span] = []
    unmatched: list[dict[str, Any]] = []
    for file_idx, trace in enumerate(traces):
        offset_us = (trace.wall_t0 - zero) * 1e6
        open_posts: dict[tuple[str, Any], dict[str, Any]] = {}
        stage_marks: dict[Any, dict[str, float]] = defaultdict(dict)
        for ev in trace.events:
            name = ev.get("ev", "")
            abs_us = offset_us + float(ev.get("t", 0.0)) * 1e6
            if name in _STAGE_EVENTS:
                if ev.get("id") is not None:
                    stage_marks[ev["id"]][name] = abs_us
                continue
            if name.endswith(".post"):
                base = name[: -len(".post")]
                open_posts[(base, ev.get("id"))] = dict(ev, _abs_us=abs_us)
            elif name.endswith(".complete"):
                base = name[: -len(".complete")]
                post = open_posts.pop((base, ev.get("id")), None)
                if post is None:
                    continue  # post fell out of the ring buffer
                spans.append(
                    Span(
                        base=base,
                        file_idx=file_idx,
                        rank=trace.rank,
                        label=trace.label,
                        tid=int(post.get("tid", 0)),
                        start_us=post["_abs_us"],
                        dur_us=max(abs_us - post["_abs_us"], 0.0),
                        id=post.get("id"),
                        peer=post.get("peer", ev.get("peer")),
                        tag=post.get("tag"),
                        size=post.get("size", ev.get("size")),
                        proto=post.get("proto", ev.get("proto")),
                        ep=post.get("ep"),
                    )
                )
        for (base, _id), post in open_posts.items():
            unmatched.append(
                {
                    "base": base,
                    "rank": trace.rank,
                    "label": trace.label,
                    "file": trace.path.name,
                    "peer": post.get("peer"),
                    "tag": post.get("tag"),
                    "ctx": post.get("ctx"),
                    "posted_at_us": round(post["_abs_us"], 3),
                }
            )
        for span in spans:
            if span.file_idx == file_idx and span.id in stage_marks:
                span.stages.update(stage_marks[span.id])
    return spans, unmatched


def chrome_trace(traces: list[RankTrace], spans: list[Span]) -> dict[str, Any]:
    """The merged timeline as Chrome ``trace_event`` JSON (dict form)."""
    zero = min((t.wall_t0 for t in traces), default=0.0)
    events: list[dict[str, Any]] = []
    for file_idx, trace in enumerate(traces):
        pid = file_idx
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {
                    "name": f"rank {trace.rank} [{trace.label}]"
                    f" (os pid {trace.meta.get('pid', '?')})"
                },
            }
        )
        for tid, tname in (trace.fin.get("threads") or {}).items():
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": int(tid),
                    "args": {"name": tname},
                }
            )
        offset_us = (trace.wall_t0 - zero) * 1e6
        for ev in trace.events:
            name = ev.get("ev", "")
            # Stage marks and any other point event (probe, failure,
            # lifecycle) become instants; .post/.complete pairs are
            # already covered by the X spans.
            if name in _STAGE_EVENTS or not (
                name.endswith(".post") or name.endswith(".complete")
            ):
                events.append(
                    {
                        "ph": "i",
                        "name": name,
                        "pid": pid,
                        "tid": int(ev.get("tid", 0)),
                        "ts": round(offset_us + float(ev.get("t", 0.0)) * 1e6, 3),
                        "s": "t",
                        "args": {
                            k: v
                            for k, v in ev.items()
                            if k not in ("t", "tid", "ev")
                        },
                    }
                )
    for span in spans:
        name = span.base
        if span.proto:
            name = f"{span.base} [{span.proto}]"
        events.append(
            {
                "ph": "X",
                "name": name,
                "cat": span.label,
                "pid": span.file_idx,
                "tid": span.tid,
                "ts": round(span.start_us, 3),
                "dur": round(span.dur_us, 3),
                "args": {
                    "id": span.id,
                    "peer": span.peer,
                    "tag": span.tag,
                    "size": span.size,
                    "rank": span.rank,
                    "ep": span.ep,
                },
            }
        )
    events.sort(key=lambda e: e.get("ts", -1.0))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# text report


def _byte_matrix(spans: Iterable[Span]) -> dict[int, dict[int, int]]:
    """sender rank -> receiver rank/uid -> payload bytes (send spans)."""
    matrix: dict[int, dict[int, int]] = defaultdict(lambda: defaultdict(int))
    for span in spans:
        if span.base == "send" and span.size and span.peer is not None:
            matrix[span.rank][span.peer] += span.size
    return matrix


def _stage_table(spans: Iterable[Span]) -> dict[str, dict[str, Any]]:
    """Per (label, proto) aggregate of protocol-stage durations (µs)."""
    agg: dict[str, dict[str, list[float]]] = defaultdict(lambda: defaultdict(list))
    for span in spans:
        if span.base != "send":
            continue
        key = f"{span.label}/{span.proto or 'eager'}"
        end = span.start_us + span.dur_us
        if span.proto == "rndz":
            marks = [("post", span.start_us)]
            for stage in _SEND_STAGES:
                if stage in span.stages:
                    marks.append((stage, span.stages[stage]))
            marks.append(("complete", end))
            for (a, ta), (b, tb) in zip(marks, marks[1:]):
                agg[key][f"{a}→{b}"].append(max(tb - ta, 0.0))
        else:
            agg[key]["post→complete"].append(span.dur_us)
    out: dict[str, dict[str, Any]] = {}
    for key, stages in agg.items():
        out[key] = {
            stage: {
                "count": len(vals),
                "mean_us": round(sum(vals) / len(vals), 2),
                "max_us": round(max(vals), 2),
            }
            for stage, vals in stages.items()
        }
    return out


def _endpoint_table(spans: Iterable[Span]) -> dict[str, dict[str, Any]]:
    """Per (rank, endpoint, op) span-latency aggregate (µs).

    Breaks stage latency down by the posting thread's endpoint so
    ``repro.obs report`` shows whether one endpoint's lock shard is the
    hot one.  Spans from traces predating the ``ep=`` field are
    skipped.
    """
    agg: dict[tuple[int, int, str], list[float]] = defaultdict(list)
    for span in spans:
        if span.ep is None or span.base not in ("send", "recv"):
            continue
        agg[(span.rank, int(span.ep), span.base)].append(span.dur_us)
    out: dict[str, dict[str, Any]] = {}
    for (rank, ep, base), vals in sorted(agg.items()):
        out[f"rank{rank}/ep{ep}/{base}"] = {
            "count": len(vals),
            "mean_us": round(sum(vals) / len(vals), 2),
            "max_us": round(max(vals), 2),
        }
    return out


def text_report(
    traces: list[RankTrace],
    spans: list[Span],
    unmatched: list[dict[str, Any]],
    top_n: int = 10,
) -> str:
    lines: list[str] = []
    total_events = sum(len(t.events) for t in traces)
    total_dropped = sum(int(t.fin.get("dropped", 0)) for t in traces)
    lines.append(
        f"merged timeline: {len(traces)} rank file(s), {total_events} events, "
        f"{len(spans)} spans, {total_dropped} dropped by ring buffers"
    )
    labels = sorted({t.label for t in traces})
    lines.append(f"devices: {', '.join(labels) if labels else '(none)'}")

    matrix = _byte_matrix(spans)
    lines.append("")
    lines.append("per-peer payload bytes (sender rank -> receiver uid):")
    if not matrix:
        lines.append("  (no completed sends)")
    else:
        receivers = sorted({p for row in matrix.values() for p in row})
        header = "  sender " + "".join(f"{f'->{p}':>14}" for p in receivers)
        lines.append(header)
        for sender in sorted(matrix):
            row = matrix[sender]
            lines.append(
                f"  {sender:>6} "
                + "".join(f"{row.get(p, 0):>14}" for p in receivers)
            )

    lines.append("")
    lines.append("protocol stage spans (µs):")
    stage_table = _stage_table(spans)
    if not stage_table:
        lines.append("  (no send spans)")
    for key in sorted(stage_table):
        lines.append(f"  {key}:")
        for stage, cell in stage_table[key].items():
            lines.append(
                f"    {stage:<22} n={cell['count']:<6} "
                f"mean={cell['mean_us']:>10.2f} max={cell['max_us']:>10.2f}"
            )

    endpoint_table = _endpoint_table(spans)
    if endpoint_table:
        lines.append("")
        lines.append("per-endpoint span latency (µs):")
        for key, cell in endpoint_table.items():
            lines.append(
                f"  {key:<22} n={cell['count']:<6} "
                f"mean={cell['mean_us']:>10.2f} max={cell['max_us']:>10.2f}"
            )

    lines.append("")
    lines.append(f"top {top_n} span latencies:")
    slowest = sorted(spans, key=lambda s: s.dur_us, reverse=True)[:top_n]
    if not slowest:
        lines.append("  (none)")
    for span in slowest:
        lines.append(
            f"  {span.dur_us:>12.2f}µs  {span.base:<6} rank={span.rank} "
            f"peer={span.peer} tag={span.tag} size={span.size} "
            f"proto={span.proto or 'eager'} [{span.label}]"
        )

    recv_unmatched = [u for u in unmatched if u["base"].endswith("recv")]
    lines.append("")
    lines.append(f"unmatched receives: {len(recv_unmatched)}")
    for u in recv_unmatched[:top_n]:
        lines.append(
            f"  rank={u['rank']} peer={u['peer']} tag={u['tag']} "
            f"ctx={u['ctx']} posted_at={u['posted_at_us']}µs [{u['label']}]"
        )
    other_unmatched = len(unmatched) - len(recv_unmatched)
    if other_unmatched:
        lines.append(f"other unmatched operations: {other_unmatched}")
    return "\n".join(lines) + "\n"


def merge_directory(
    directory: Path | str, out: Optional[Path | str] = None
) -> tuple[dict[str, Any], str]:
    """Load, merge, and render *directory*; optionally write Chrome JSON.

    Returns ``(chrome_trace_dict, text_report_str)``.
    """
    traces = load_trace_dir(directory)
    spans, unmatched = build_spans(traces)
    chrome = chrome_trace(traces, spans)
    report = text_report(traces, spans, unmatched)
    if out is not None:
        Path(out).write_text(json.dumps(chrome) + "\n", encoding="utf-8")
    return chrome, report
