"""The observability CLI: ``python -m repro.obs``.

Subcommands::

    python -m repro.obs merge DIR [--out FILE] [--quiet]
        Merge DIR's per-rank JSONL traces into a causally stitched
        Chrome trace_event JSON (default DIR/timeline.json; open it in
        chrome://tracing or https://ui.perfetto.dev) — including
        ``s``/``f`` flow arrows for every matched send→recv pair — and
        print the text report.

    python -m repro.obs report DIR [--critical-path] [--json FILE]
        Print the text report (per-peer byte matrix, protocol stage
        spans, causal-flow summary, top latencies, unmatched
        receives).  ``--critical-path`` appends the longest dependency
        chain with wait/wire/compute attribution; ``--json FILE``
        writes a metric snapshot usable as a regression baseline.

    python -m repro.obs report --regress OLD.json NEW.json [--fail-on-regress]
        Diff two metric snapshots; prints every latency metric that
        moved and flags >20% growth.  Exit code stays 0 (advisory)
        unless ``--fail-on-regress`` is given.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.critical import critical_path, format_critical_path
from repro.obs.merge import analyze_directory
from repro.obs.regress import (
    DEFAULT_THRESHOLD,
    build_snapshot,
    compare_snapshots,
    load_snapshot,
    write_snapshot,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_merge = sub.add_parser("merge", help="merge traces, write Chrome JSON, print report")
    p_merge.add_argument("dir", help="directory of per-rank *.jsonl trace files")
    p_merge.add_argument(
        "--out", metavar="FILE",
        help="Chrome trace_event JSON output path (default DIR/timeline.json)",
    )
    p_merge.add_argument(
        "--quiet", action="store_true", help="suppress the text report"
    )

    p_report = sub.add_parser(
        "report", help="print the text report / diff metric snapshots"
    )
    p_report.add_argument(
        "dir", nargs="?",
        help="directory of per-rank *.jsonl trace files "
        "(omitted in --regress mode)",
    )
    p_report.add_argument(
        "--critical-path", action="store_true",
        help="append the longest dependency chain with "
        "wait/wire/compute attribution",
    )
    p_report.add_argument(
        "--json", metavar="FILE", dest="json_out",
        help="write a metric snapshot (regression baseline) to FILE",
    )
    p_report.add_argument(
        "--regress", nargs=2, metavar=("OLD", "NEW"),
        help="diff two metric snapshots instead of reading traces",
    )
    p_report.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="relative latency growth that counts as a regression "
        "(default %(default)s)",
    )
    p_report.add_argument(
        "--fail-on-regress", action="store_true",
        help="exit non-zero when a regression is flagged "
        "(default: advisory warnings only)",
    )

    ns = parser.parse_args(argv)

    if ns.command == "report" and ns.regress:
        return _regress(ns)

    if ns.dir is None:
        print("report: a trace directory is required (or use --regress)",
              file=sys.stderr)
        return 2
    directory = Path(ns.dir)
    if not directory.is_dir():
        print(f"not a directory: {directory}", file=sys.stderr)
        return 2

    analysis = analyze_directory(directory)

    if ns.command == "merge":
        out = Path(ns.out) if ns.out else directory / "timeline.json"
        out.write_text(json.dumps(analysis.chrome) + "\n", encoding="utf-8")
        if not ns.quiet:
            print(analysis.report)
        print(f"wrote {out} ({len(analysis.chrome['traceEvents'])} trace events)")
        return 0

    print(analysis.report)
    if ns.critical_path:
        crit = critical_path(analysis.spans, analysis.edges)
        print(format_critical_path(crit))
    if ns.json_out:
        snapshot = build_snapshot(analysis)
        path = write_snapshot(snapshot, ns.json_out)
        print(f"wrote metric snapshot {path}")
    return 0


def _regress(ns: argparse.Namespace) -> int:
    old_path, new_path = ns.regress
    try:
        old = load_snapshot(old_path)
        new = load_snapshot(new_path)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot load snapshot: {exc}", file=sys.stderr)
        return 2
    lines, regressions = compare_snapshots(old, new, threshold=ns.threshold)
    print(f"metric diff {old_path} -> {new_path}:")
    for line in lines:
        print(line)
    if regressions:
        print(
            f"WARNING: {len(regressions)} latency regression(s) beyond "
            f"{ns.threshold * 100:.0f}%: {', '.join(regressions)}"
        )
        return 1 if ns.fail_on_regress else 0
    print("no latency regressions.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
