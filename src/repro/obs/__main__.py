"""The observability CLI: ``python -m repro.obs``.

Subcommands::

    python -m repro.obs merge DIR [--out FILE] [--quiet]
        Merge DIR's per-rank JSONL traces into a clock-aligned Chrome
        trace_event JSON (default DIR/timeline.json; open it in
        chrome://tracing or https://ui.perfetto.dev) and print the
        text report.

    python -m repro.obs report DIR
        Print only the text report (per-peer byte matrix, protocol
        stage spans, top latencies, unmatched receives).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.obs.merge import merge_directory


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_merge = sub.add_parser("merge", help="merge traces, write Chrome JSON, print report")
    p_merge.add_argument("dir", help="directory of per-rank *.jsonl trace files")
    p_merge.add_argument(
        "--out", metavar="FILE",
        help="Chrome trace_event JSON output path (default DIR/timeline.json)",
    )
    p_merge.add_argument(
        "--quiet", action="store_true", help="suppress the text report"
    )

    p_report = sub.add_parser("report", help="print the text report only")
    p_report.add_argument("dir", help="directory of per-rank *.jsonl trace files")

    ns = parser.parse_args(argv)
    directory = Path(ns.dir)
    if not directory.is_dir():
        print(f"not a directory: {directory}", file=sys.stderr)
        return 2

    if ns.command == "merge":
        out = Path(ns.out) if ns.out else directory / "timeline.json"
        chrome, report = merge_directory(directory, out=out)
        if not ns.quiet:
            print(report)
        print(f"wrote {out} ({len(chrome['traceEvents'])} trace events)")
        return 0

    _, report = merge_directory(directory, out=None)
    print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
