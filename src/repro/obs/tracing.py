"""Structured per-rank trace export: bounded ring buffer → JSONL.

Setting ``REPRO_TRACE=<dir>`` turns on tracing for every rank: the
protocol engine creates a :class:`TraceWriter` at init (so the
launcher, the process daemons and raw device jobs all inherit it from
the environment) and flushes it at device finish.  One file per
writer, named ``<label>-rank<uid>-p<ospid>-<n>.jsonl``, so many jobs
in one process (the bench!) never collide.

File schema (one JSON object per line):

* line 1 — ``{"meta": {"rank", "pid", "label", "wall_t0", "mono_t0",
  "version"}}``.  ``wall_t0`` (``time.time()``) is the clock-alignment
  anchor the merge CLI uses to place ranks on one timeline;
  ``mono_t0`` anchors the events' monotonic offsets.
* event lines — ``{"t": <seconds since mono_t0>, "tid": <thread id>,
  "ev": <name>, ...}`` plus optional ``id``/``peer``/``tag``/``ctx``/
  ``size``/``proto``.  Protocol-stage event names pair ``<base>.post``
  with ``<base>.complete`` (same ``id``) into spans; the rendezvous
  stages ``rts.out``/``rts.in``/``rtr.out``/``rtr.in``/``rndz.out``/
  ``rndz.in`` are instants sharing the send/recv span's id.  Since
  schema version 2, protocol events also carry the causal context the
  frame headers transport (:mod:`repro.xdev.causal`): ``lc`` — the
  Lamport clock at the event — and ``fs``/``fq`` — the message's flow
  id (origin engine uid, per-engine send sequence).  ``fq`` appears on
  ``send.post`` and on the receive side's arrival/complete events; the
  merge CLI pairs send and recv spans on ``(fs, fq)``.
* last line — ``{"fin": {"events", "dropped", "threads"}}``; ``dropped``
  counts events evicted by the bounded ring buffer
  (``REPRO_TRACE_BUFFER``, default 65536 events per writer).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Optional

TRACE_ENV = "REPRO_TRACE"
TRACE_BUFFER_ENV = "REPRO_TRACE_BUFFER"

DEFAULT_BUFFER_EVENTS = 65536

SCHEMA_VERSION = 2

#: Per-process sequence so several writers for the same (label, rank)
#: — the bench stands jobs up back to back — get distinct file names.
_FILE_SEQ = itertools.count(1)


def trace_dir() -> Optional[Path]:
    """The trace output directory, or None when tracing is off."""
    value = os.environ.get(TRACE_ENV, "").strip()
    return Path(value) if value else None


class TraceWriter:
    """Thread-safe bounded event ring, flushed to one JSONL file."""

    def __init__(
        self,
        directory: Path | str,
        rank: int,
        label: str = "dev",
        buffer_events: Optional[int] = None,
    ) -> None:
        if buffer_events is None:
            try:
                buffer_events = int(
                    os.environ.get(TRACE_BUFFER_ENV, DEFAULT_BUFFER_EVENTS)
                )
            except ValueError:
                buffer_events = DEFAULT_BUFFER_EVENTS
        self.directory = Path(directory)
        self.rank = rank
        self.label = label
        self.path = self.directory / (
            f"{label}-rank{rank}-p{os.getpid()}-{next(_FILE_SEQ)}.jsonl"
        )
        self.wall_t0 = time.time()
        self.mono_t0 = time.monotonic()
        self._lock = threading.Lock()
        self._ring: deque[dict[str, Any]] = deque(maxlen=max(buffer_events, 1))
        self._dropped = 0
        self._thread_names: dict[int, str] = {}
        self._closed = False

    def emit(self, ev: str, **fields: Any) -> None:
        """Record one event; drops the oldest when the ring is full."""
        t = time.monotonic() - self.mono_t0
        tid = threading.get_ident()
        record = {"t": round(t, 9), "tid": tid, "ev": ev}
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        with self._lock:
            if self._closed:
                return
            if tid not in self._thread_names:
                self._thread_names[tid] = threading.current_thread().name
            if len(self._ring) == self._ring.maxlen:
                self._dropped += 1
            self._ring.append(record)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def close(self) -> Optional[Path]:
        """Flush the ring to :attr:`path`; idempotent."""
        with self._lock:
            if self._closed:
                return None
            self._closed = True
            events = list(self._ring)
            self._ring.clear()
            dropped = self._dropped
            threads = {str(k): v for k, v in self._thread_names.items()}
        self.directory.mkdir(parents=True, exist_ok=True)
        meta = {
            "meta": {
                "rank": self.rank,
                "pid": os.getpid(),
                "label": self.label,
                "wall_t0": self.wall_t0,
                "mono_t0": self.mono_t0,
                "version": SCHEMA_VERSION,
            }
        }
        fin = {"fin": {"events": len(events), "dropped": dropped, "threads": threads}}
        with self.path.open("w", encoding="utf-8") as fh:
            fh.write(json.dumps(meta) + "\n")
            for record in events:
                fh.write(json.dumps(record) + "\n")
            fh.write(json.dumps(fin) + "\n")
        return self.path


def writer_for(rank: int, label: str = "dev") -> Optional[TraceWriter]:
    """A TraceWriter if ``REPRO_TRACE`` names a directory, else None."""
    directory = trace_dir()
    if directory is None:
        return None
    return TraceWriter(directory, rank, label=label)


def dump_metrics(snapshot: dict[str, Any], rank: int, label: str = "dev") -> Optional[Path]:
    """Write a metrics snapshot JSON next to the rank's trace files."""
    directory = trace_dir()
    if directory is None:
        return None
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / (
        f"metrics-{label}-rank{rank}-p{os.getpid()}-{next(_FILE_SEQ)}.json"
    )
    path.write_text(json.dumps(snapshot, indent=1, default=repr) + "\n", encoding="utf-8")
    return path
