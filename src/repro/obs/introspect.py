"""Stall snapshots: pending operations with ages, on demand or on signal.

This is the promoted form of the PR-1 watchdog's triage dump: one
function that gathers, from any mix of devices and tracers, everything
a hang post-mortem needs — live queue depths (``device.introspect()``),
engine protocol counters, and every pending traced operation with its
age.  :class:`~repro.testing.watchdog.ProgressWatchdog` calls it on a
stall (and writes it into the ``REPRO_TRACE`` directory when tracing
is on); :func:`install_stall_handler` wires it to SIGUSR1 so a hung
run can be interrogated from outside without killing it.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import time
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

from repro.obs.tracing import trace_dir


def stall_snapshot(
    devices: Sequence[Any] = (),
    tracers: Sequence[Any] = (),
    min_age_s: float = 0.0,
) -> dict[str, Any]:
    """Snapshot pending work across *devices* and *tracers*.

    ``devices`` are anything with ``introspect()`` (queue depths) —
    engine stats ride along inside that dict.  ``tracers`` are
    :class:`~repro.trace.TracingDevice` instances; their pending
    operations older than *min_age_s* are listed with ages.
    """
    snap: dict[str, Any] = {
        "taken_at": time.time(),
        "devices": [],
        "pending_operations": [],
    }
    for dev in devices:
        introspect = getattr(dev, "introspect", None)
        if introspect is None:
            continue
        try:
            snap["devices"].append(introspect())
        except Exception as exc:  # noqa: BLE001 - a dead device still snapshots
            snap["devices"].append({"error": repr(exc)})
    for i, tracer in enumerate(tracers):
        now = tracer.clock()
        for event in tracer.detect_stalled(min_age_s=min_age_s):
            snap["pending_operations"].append(
                {
                    "tracer": i,
                    "op": event.op,
                    "peer": event.peer,
                    "tag": event.tag,
                    "context": event.context,
                    "posted_at": event.time,
                    "age_s": round(now - event.time, 6),
                }
            )
    return snap


def write_stall_file(snapshot: dict[str, Any]) -> Optional[Path]:
    """Persist *snapshot* into the ``REPRO_TRACE`` directory, if set."""
    directory = trace_dir()
    if directory is None:
        return None
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"stall-p{os.getpid()}-{time.time_ns()}.json"
    path.write_text(
        json.dumps(snapshot, indent=1, default=repr) + "\n", encoding="utf-8"
    )
    return path


def install_stall_handler(
    devices: Sequence[Any] = (),
    tracers: Sequence[Any] = (),
    signum: int = getattr(signal, "SIGUSR1", signal.SIGTERM),
    on_snapshot: Optional[Callable[[dict[str, Any]], None]] = None,
) -> Any:
    """Dump a stall snapshot whenever *signum* (default SIGUSR1) arrives.

    The snapshot goes to the ``REPRO_TRACE`` directory when tracing is
    on, else to stderr; *on_snapshot* additionally receives the dict.
    Must be called from the main thread (CPython signal rule).  Returns
    the previous handler so callers can restore it.
    """

    def _handler(_sig, _frame) -> None:
        snap = stall_snapshot(devices=devices, tracers=tracers)
        path = write_stall_file(snap)
        if path is None:
            print(json.dumps(snap, indent=1, default=repr), file=sys.stderr)
        if on_snapshot is not None:
            on_snapshot(snap)

    return signal.signal(signum, _handler)
