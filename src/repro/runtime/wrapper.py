"""Service-wrapper utilities (the Java Service Wrapper role).

The paper: "MPJ Express uses the Java Service Wrapper Project software
to install daemons as a native OS service."  The portable Python
equivalent is a pidfile-managed background daemon: ``install`` starts
a detached daemon process and records its pid; ``status`` and ``stop``
manage it.  (A real deployment would register a systemd unit — out of
scope for a laptop reproduction, but the pidfile interface is what a
unit file would call.)
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Optional

DEFAULT_PIDFILE = Path("/tmp/mpj-daemon.pid")


class ServiceError(Exception):
    """Daemon service management failed."""


def _read_pid(pidfile: Path) -> Optional[int]:
    try:
        return int(pidfile.read_text().strip())
    except (FileNotFoundError, ValueError):
        return None


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
        return True
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other user's process
        return True


def install(
    port: int = 10_000,
    host: str = "127.0.0.1",
    pidfile: Path = DEFAULT_PIDFILE,
) -> int:
    """Start a detached daemon and record its pid; returns the pid."""
    existing = _read_pid(pidfile)
    if existing is not None and _alive(existing):
        raise ServiceError(f"daemon already running with pid {existing}")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.runtime.daemon",
            "--host",
            host,
            "--port",
            str(port),
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,  # detach from the controlling terminal
    )
    pidfile.write_text(str(process.pid))
    return process.pid


def status(pidfile: Path = DEFAULT_PIDFILE) -> Optional[int]:
    """Pid of the running daemon, or None."""
    pid = _read_pid(pidfile)
    if pid is not None and _alive(pid):
        return pid
    return None


def stop(pidfile: Path = DEFAULT_PIDFILE, grace: float = 5.0) -> bool:
    """Stop the managed daemon; True if one was stopped."""
    pid = _read_pid(pidfile)
    if pid is None or not _alive(pid):
        pidfile.unlink(missing_ok=True)
        return False
    os.kill(pid, signal.SIGTERM)
    deadline = time.monotonic() + grace
    while time.monotonic() < deadline:
        if not _alive(pid):
            break
        time.sleep(0.05)
    else:
        os.kill(pid, signal.SIGKILL)
    pidfile.unlink(missing_ok=True)
    return True
