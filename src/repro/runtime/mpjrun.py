"""mpjrun — the job-launching client (paper Section IV-D).

"The mpjrun module acts as a client to the daemon module ... It will
contact daemons, which will start MPJE processes in a new JVM."

Usage as a library::

    from repro.runtime.daemon import Daemon
    from repro.runtime.mpjrun import run_job

    daemon = Daemon(); daemon.start()
    result = run_job([("127.0.0.1", daemon.port)], nprocs=2,
                     module_path="examples/quickstart_worker.py")

or from the command line::

    mpjrun -np 4 --daemon 127.0.0.1:10000 myscript.py
    mpjrun -np 4 --daemon hostA:10000 --daemon hostB:10000 \
           --loader remote myscript.py

Ranks are dealt to the given daemons round-robin.  ``--loader remote``
ships the script's *source* inside the request (Fig. 9b — no shared
filesystem needed); the default ``local`` sends only the path
(Fig. 9a — shared filesystem).
"""

from __future__ import annotations

import json
import socket
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.runtime.protocol import ProtocolError, request
from repro.runtime.worker import RESULT_BEGIN, RESULT_END


class JobError(Exception):
    """The job could not be started or a worker failed.

    ``job_id`` identifies the failed job when known; for local
    shared-memory jobs (:mod:`repro.runtime.localspawn`) ``swept``
    lists segment names the parent had to reap after a crashed rank
    and ``leaked`` any that survived even the sweep (always empty
    unless /dev/shm itself misbehaves) — leak audits assert on these.
    """

    def __init__(self, message: str, *, job_id: str | None = None) -> None:
        super().__init__(message)
        self.job_id = job_id
        self.swept: list[str] = []
        self.leaked: list[str] = []


def parse_hostfile(path: str | Path) -> list[tuple[str, int]]:
    """Parse a machines file into daemon addresses.

    One entry per line, ``host[:port]`` (port defaults to the
    daemon's historical 10000); blank lines and ``#`` comments are
    ignored — the classic MPI machines-file format the MPJ Express
    runtime consumed.
    """
    daemons: list[tuple[str, int]] = []
    for lineno, raw in enumerate(Path(path).read_text().splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        host, _, port = line.partition(":")
        if not host:
            raise JobError(f"{path}:{lineno}: missing host in {raw!r}")
        try:
            daemons.append((host, int(port) if port else 10_000))
        except ValueError:
            raise JobError(f"{path}:{lineno}: bad port in {raw!r}") from None
    if not daemons:
        raise JobError(f"hostfile {path} lists no hosts")
    return daemons


@dataclass
class JobResult:
    """Outcome of one job: per-rank results and raw outputs."""

    job_id: str
    results: list[Any]
    stdouts: list[str]
    stderrs: list[str]
    exit_codes: list[int]
    #: Job-wide merged device statistics (local shared-memory jobs:
    #: per-rank copy-stats snapshots plus their totals); None when the
    #: launch path doesn't collect them.
    stats: Optional[dict] = field(default=None)
    #: Where the job's per-rank JSONL traces landed (local jobs run
    #: with tracing on), and the files this job's worker processes
    #: wrote there — ready for ``python -m repro.obs merge``.
    trace_dir: Optional[str] = field(default=None)
    trace_files: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(code == 0 for code in self.exit_codes)


def _allocate_ports(nprocs: int, host: str = "127.0.0.1") -> list[tuple[str, int]]:
    """Reserve one TCP port per rank by momentarily binding it.

    Localhost-oriented (the test environment): for a real multi-host
    deployment the daemons would own port allocation.
    """
    socks = []
    addrs = []
    for _ in range(nprocs):
        s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        s.bind((host, 0))
        socks.append(s)
        addrs.append(s.getsockname())
    for s in socks:
        s.close()
    return addrs


def _extract_result(stdout: str) -> Any:
    begin = stdout.rfind(RESULT_BEGIN)
    end = stdout.rfind(RESULT_END)
    if begin == -1 or end == -1 or end < begin:
        return None
    payload = stdout[begin + len(RESULT_BEGIN) : end].strip()
    try:
        return json.loads(payload)
    except json.JSONDecodeError:
        return payload


def run_job(
    daemons: Sequence[tuple[str, int]],
    nprocs: int,
    module_path: str | Path,
    entry: str = "main",
    args: Sequence[Any] = (),
    device: str = "niodev",
    options: Optional[dict] = None,
    loader: str = "local",
    timeout: float = 120.0,
    poll_interval: float = 0.2,
) -> JobResult:
    """Launch and await an SPMD job across *daemons*.

    Returns a :class:`JobResult`; raises :class:`JobError` on startup
    failure or non-zero worker exits (with stderr attached).
    """
    if nprocs < 1:
        raise JobError("nprocs must be >= 1")
    if not daemons:
        raise JobError("at least one daemon address is required")
    module_path = Path(module_path)

    peers = _allocate_ports(nprocs)
    base_req: dict[str, Any] = {
        "cmd": "start",
        "nprocs": nprocs,
        "peers": peers,
        "device": device,
        "options": options or {},
        "entry": entry,
        "args": list(args),
    }
    if loader == "remote":
        base_req["module_source"] = module_path.read_text(encoding="utf-8")
    elif loader == "local":
        base_req["module_path"] = str(module_path.resolve())
    else:
        raise JobError(f"unknown loader {loader!r} (use 'local' or 'remote')")

    # Deal ranks to daemons round-robin.
    assignments: dict[int, list[int]] = {i: [] for i in range(len(daemons))}
    for rank in range(nprocs):
        assignments[rank % len(daemons)].append(rank)

    job_id = None
    started: list[tuple[tuple[str, int], str]] = []
    try:
        for di, (host, port) in enumerate(daemons):
            ranks = assignments[di]
            if not ranks:
                continue
            req = dict(base_req, ranks=ranks)
            if job_id is not None:
                req["job_id"] = job_id
            reply = request(host, port, req)
            job_id = reply["job_id"]
            started.append(((host, port), job_id))
    except ProtocolError as exc:
        for (host, port), jid in started:
            try:
                request(host, port, {"cmd": "stop", "job_id": jid})
            except ProtocolError:
                pass
        raise JobError(f"failed to start job: {exc}") from exc

    assert job_id is not None
    deadline = time.monotonic() + timeout
    final: dict[int, dict] = {}
    while time.monotonic() < deadline:
        final.clear()
        done = True
        for di, (host, port) in enumerate(daemons):
            if not assignments[di]:
                continue
            reply = request(host, port, {"cmd": "poll", "job_id": job_id})
            for w in reply["workers"]:
                if w["exit_code"] is None:
                    done = False
                else:
                    final[w["rank"]] = w
        if done:
            break
        time.sleep(poll_interval)
    else:
        for di, (host, port) in enumerate(daemons):
            if assignments[di]:
                try:
                    request(host, port, {"cmd": "stop", "job_id": job_id})
                except ProtocolError:
                    pass
        raise JobError(f"job {job_id} did not finish within {timeout}s")

    results, stdouts, stderrs, codes = [], [], [], []
    for rank in range(nprocs):
        w = final[rank]
        stdouts.append(w["stdout"])
        stderrs.append(w["stderr"])
        codes.append(w["exit_code"])
        results.append(_extract_result(w["stdout"]))
    if any(code != 0 for code in codes):
        bad = [(r, codes[r]) for r in range(nprocs) if codes[r] != 0]
        detail = "\n".join(
            f"--- rank {r} (exit {c}) ---\n{stderrs[r]}" for r, c in bad
        )
        raise JobError(f"job {job_id}: workers failed:\n{detail}")
    return JobResult(job_id, results, stdouts, stderrs, codes)


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point (the ``mpjrun`` console script)."""
    import argparse

    parser = argparse.ArgumentParser(description="MPJ Express job launcher")
    parser.add_argument("script", help="user Python script exposing the entry function")
    parser.add_argument("-np", type=int, default=2, help="number of processes")
    parser.add_argument(
        "--daemon",
        action="append",
        default=[],
        metavar="HOST:PORT",
        help="daemon address (repeatable); default 127.0.0.1:10000",
    )
    parser.add_argument(
        "--hostfile",
        metavar="PATH",
        help="machines file: one host[:port] per line (# comments ok)",
    )
    parser.add_argument("--entry", default="main")
    parser.add_argument("--device", default="niodev")
    parser.add_argument("--loader", choices=["local", "remote"], default="local")
    parser.add_argument("--timeout", type=float, default=300.0)
    parser.add_argument(
        "--local",
        action="store_true",
        help="spawn ranks as local child processes (no daemons); implied "
        "by --device procdev, whose ranks must share memory on one host",
    )
    parser.add_argument(
        "--trace",
        metavar="DIR",
        help="(with --local) collect per-rank JSONL traces into DIR "
        "(sets REPRO_TRACE for every rank); merge them afterwards with "
        "'python -m repro.obs merge DIR'",
    )
    ns = parser.parse_args(argv)

    if ns.local or ns.device == "procdev":
        from repro.runtime.localspawn import run_local_job

        try:
            outcome = run_local_job(
                ns.np,
                ns.script,
                entry=ns.entry,
                device=ns.device if ns.device != "niodev" else "procdev",
                timeout=ns.timeout,
                trace_dir=ns.trace,
            )
        except JobError as exc:
            print(f"mpjrun: {exc}", file=sys.stderr)
            return 1
        for rank, out in enumerate(outcome.stdouts):
            text = out.split(RESULT_BEGIN)[0].rstrip()
            if text:
                print(f"[rank {rank}] {text}")
        print(f"job {outcome.job_id} finished; results: {outcome.results}")
        if outcome.stats and outcome.stats.get("copy_stats"):
            print(f"job copy stats: {outcome.stats['copy_stats']}")
        if outcome.trace_dir:
            print(
                f"wrote {len(outcome.trace_files)} rank trace file(s) to "
                f"{outcome.trace_dir}; merge with "
                f"'python -m repro.obs merge {outcome.trace_dir}'"
            )
        return 0

    daemons = []
    if ns.hostfile:
        try:
            daemons.extend(parse_hostfile(ns.hostfile))
        except JobError as exc:
            print(f"mpjrun: {exc}", file=sys.stderr)
            return 1
    for spec in ns.daemon or ([] if daemons else ["127.0.0.1:10000"]):
        host, _, port = spec.rpartition(":")
        daemons.append((host or "127.0.0.1", int(port)))
    try:
        outcome = run_job(
            daemons,
            ns.np,
            ns.script,
            entry=ns.entry,
            device=ns.device,
            loader=ns.loader,
            timeout=ns.timeout,
        )
    except JobError as exc:
        print(f"mpjrun: {exc}", file=sys.stderr)
        return 1
    for rank, out in enumerate(outcome.stdouts):
        text = out.split(RESULT_BEGIN)[0].rstrip()
        if text:
            print(f"[rank {rank}] {text}")
    print(f"job {outcome.job_id} finished; results: {outcome.results}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
