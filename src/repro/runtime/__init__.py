"""The MPJ Express runtime (paper Section IV-D).

Two execution models are provided:

* :mod:`repro.runtime.launcher` — SPMD over **threads** in one
  process, the default for tests, examples and the paper's SMP story.
* :mod:`repro.runtime.daemon` + :mod:`repro.runtime.mpjrun` — the
  paper's daemon/mpjrun pair: daemons listen on an IP port on each
  compute node and start a new worker **process** per job request; the
  ``mpjrun`` client contacts them, ships or points at the user code
  (remote vs local "class loading", Fig. 9), and collects output.
"""

from repro.runtime.launcher import run_spmd, SpmdError

__all__ = ["run_spmd", "SpmdError"]
