"""Worker process bootstrap: one MPJE process in a fresh interpreter.

The daemon starts ``python -m repro.runtime.worker <config.json>`` per
rank ("The daemon is a Java application listening on an IP port, which
starts a new JVM whenever there is a request to execute an MPJE
process" — a fresh CPython interpreter plays the fresh JVM).

The config file carries everything the rank needs: its rank, the
job-wide peer address table, the device and its options, and the user
code (a path for local loading or source text for remote loading).
The worker loads the code, brings up the device, runs
``entry(env, *args)``, prints the JSON-encoded result on stdout
between sentinel markers, and exits 0 on success.
"""

from __future__ import annotations

import json
import sys
import traceback
from pathlib import Path

from repro.mpi.environment import MPJEnvironment
from repro.runtime.codeloader import load_local, load_remote, resolve_entry
from repro.xdev.device import DeviceConfig

#: stdout sentinels so mpjrun can extract the result among user prints.
RESULT_BEGIN = "===MPJ-RESULT-BEGIN==="
RESULT_END = "===MPJ-RESULT-END==="


def run_from_config(config: dict) -> int:
    """Execute one rank as described by *config*; returns an exit code."""
    rank = int(config["rank"])
    nprocs = int(config["nprocs"])
    peers = [tuple(p) for p in config["peers"]]
    device = config.get("device", "niodev")
    options = dict(config.get("options", {}))
    entry = config.get("entry", "main")
    args = config.get("args", [])

    if "module_source" in config:
        module = load_remote(config["module_source"])
    else:
        module = load_local(config["module_path"])
    fn = resolve_entry(module, entry)

    env = MPJEnvironment.create(
        device,
        DeviceConfig(rank=rank, nprocs=nprocs, peers=peers, options=options),
    )
    try:
        result = fn(env, *args)
    finally:
        env.finalize()

    try:
        encoded = json.dumps(result)
    except TypeError:
        encoded = json.dumps(repr(result))
    print(RESULT_BEGIN)
    print(encoded)
    print(RESULT_END)
    sys.stdout.flush()
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 1:
        print("usage: python -m repro.runtime.worker <config.json>", file=sys.stderr)
        return 2
    try:
        import signal

        # A terminated rank must still run atexit hooks: shared-memory
        # segment owners unlink there (repro.shm.segment), and plain
        # SIGTERM would skip them.  SystemExit turns the signal into an
        # orderly interpreter shutdown.
        signal.signal(signal.SIGTERM, lambda *_: sys.exit(143))
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    try:
        config = json.loads(Path(argv[0]).read_text(encoding="utf-8"))
        return run_from_config(config)
    except Exception:
        traceback.print_exc()
        return 1


if __name__ == "__main__":
    sys.exit(main())
