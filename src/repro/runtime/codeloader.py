"""Local and remote code loading (paper Fig. 9).

The MPJE runtime lets compute nodes obtain application code two ways:

* **local loading** — the class files live on a shared filesystem and
  each node loads them directly ("this might provide better
  performance"), and
* **remote loading** — classes are served from the user's development
  node over HTTP, "useful in scenarios when there is no shared file
  system and the code is constantly being modified at the head-node".

The Python analogue: a worker either imports the user script from a
filesystem path (local), or receives the script *source text* in its
start request, materializes it in a scratch directory and imports it
from there (remote).  Either way the loaded module must expose the
job's entry function.
"""

from __future__ import annotations

import importlib.util
import sys
import tempfile
from pathlib import Path
from types import ModuleType


class CodeLoadError(Exception):
    """The user module could not be loaded or lacks the entry point."""


def _import_from_path(path: Path, module_name: str) -> ModuleType:
    spec = importlib.util.spec_from_file_location(module_name, path)
    if spec is None or spec.loader is None:
        raise CodeLoadError(f"cannot build an import spec for {path}")
    module = importlib.util.module_from_spec(spec)
    # Register before exec so dataclasses/pickling inside the module work.
    sys.modules[module_name] = module
    try:
        spec.loader.exec_module(module)
    except Exception as exc:
        sys.modules.pop(module_name, None)
        raise CodeLoadError(f"error executing {path}: {exc}") from exc
    return module


def load_local(path: str | Path, module_name: str = "mpj_app") -> ModuleType:
    """Local loading: import the user script straight from *path*."""
    path = Path(path)
    if not path.exists():
        raise CodeLoadError(f"user script {path} does not exist")
    return _import_from_path(path, module_name)


def load_remote(
    source: str,
    module_name: str = "mpj_app",
    scratch_dir: str | Path | None = None,
) -> ModuleType:
    """Remote loading: materialize shipped *source* and import it.

    The source was transferred from the head node inside the job
    request — the HTTP-server role of the paper's remote loader is
    played by the daemon protocol itself.
    """
    directory = (
        Path(scratch_dir)
        if scratch_dir is not None
        else Path(tempfile.mkdtemp(prefix="mpj-remote-"))
    )
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{module_name}.py"
    path.write_text(source, encoding="utf-8")
    return _import_from_path(path, module_name)


def resolve_entry(module: ModuleType, entry: str = "main"):
    """Fetch the job entry function from a loaded module."""
    fn = getattr(module, entry, None)
    if not callable(fn):
        raise CodeLoadError(
            f"module {module.__name__!r} has no callable {entry!r}"
        )
    return fn
