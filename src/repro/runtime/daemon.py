"""The MPJE daemon: listens on an IP port, starts worker processes.

Paper Section IV-D: "The runtime system consists of two modules.  The
daemon module executes on compute-nodes and listens for requests to
start MPJE processes. ... The mpjrun module acts as a client to the
daemon module."

One daemon runs per compute node; ``mpjrun`` sends it a ``start``
request naming which of the job's ranks this node hosts.  The daemon
launches one worker interpreter per rank (see
:mod:`repro.runtime.worker`), captures each worker's stdout/stderr to
scratch files, and answers ``poll`` requests with status and output.

The Java Service Wrapper role (installing the daemon as an OS service)
is covered by :mod:`repro.runtime.wrapper`.
"""

from __future__ import annotations

import json
import socket
import subprocess
import sys
import tempfile
import threading
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.runtime.protocol import ProtocolError, recv_json, send_json

DEFAULT_PORT = 10_000  # the historical MPJ Express daemon port


@dataclass
class _WorkerProc:
    rank: int
    process: subprocess.Popen
    stdout_path: Path
    stderr_path: Path


@dataclass
class _Job:
    job_id: str
    workers: list[_WorkerProc] = field(default_factory=list)
    scratch: Optional[Path] = None
    #: The start request's worker config, kept so ``grow`` can spawn
    #: additional ranks into the running job later.
    base_config: dict = field(default_factory=dict)


class Daemon:
    """A compute-node daemon instance."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._listen = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listen.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listen.bind((host, port))
        self._listen.listen(16)
        self.host, self.port = self._listen.getsockname()
        self._jobs: dict[str, _Job] = {}
        self._lock = threading.Lock()
        self._shutdown = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # serving

    def start(self) -> None:
        """Serve in a background thread (returns immediately)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name=f"mpj-daemon-{self.port}", daemon=True
        )
        self._thread.start()

    def serve_forever(self) -> None:
        self._listen.settimeout(0.5)
        while not self._shutdown.is_set():
            try:
                conn, _addr = self._listen.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(
                target=self._serve_one, args=(conn,), daemon=True
            ).start()
        self._listen.close()

    def _serve_one(self, conn: socket.socket) -> None:
        try:
            with conn, conn.makefile("r", encoding="utf-8") as f:
                try:
                    req = recv_json(f)
                except ProtocolError:
                    return
                try:
                    reply = self._handle(req)
                except Exception as exc:  # noqa: BLE001 - reported to client
                    reply = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
                send_json(conn, reply)
        except OSError:  # pragma: no cover - client went away
            pass

    # ------------------------------------------------------------------
    # request handling

    def _handle(self, req: Any) -> dict:
        if not isinstance(req, dict) or "cmd" not in req:
            return {"ok": False, "error": "malformed request"}
        cmd = req["cmd"]
        if cmd == "ping":
            with self._lock:
                njobs = len(self._jobs)
            return {"ok": True, "jobs": njobs, "port": self.port}
        if cmd == "start":
            return self._start_job(req)
        if cmd == "grow":
            return self._grow_job(req)
        if cmd == "poll":
            return self._poll_job(req)
        if cmd == "stop":
            return self._stop_job(req)
        if cmd == "shutdown":
            self._shutdown.set()
            return {"ok": True}
        return {"ok": False, "error": f"unknown command {cmd!r}"}

    def _start_job(self, req: dict) -> dict:
        job_id = req.get("job_id") or uuid.uuid4().hex
        ranks = req["ranks"]  # ranks THIS daemon hosts
        scratch = Path(tempfile.mkdtemp(prefix=f"mpj-job-{job_id[:8]}-"))
        job = _Job(job_id=job_id, scratch=scratch)

        base_config = {
            "nprocs": req["nprocs"],
            "peers": req["peers"],
            "device": req.get("device", "niodev"),
            "options": req.get("options", {}),
            "entry": req.get("entry", "main"),
            "args": req.get("args", []),
        }
        if "module_source" in req:
            base_config["module_source"] = req["module_source"]
        else:
            base_config["module_path"] = req["module_path"]

        self._spawn_workers(job, base_config, ranks)
        job.base_config = base_config

        with self._lock:
            self._jobs[job_id] = job
        return {"ok": True, "job_id": job_id, "pids": [w.process.pid for w in job.workers]}

    def _spawn_workers(self, job: _Job, base_config: dict, ranks: list) -> list:
        spawned = []
        for rank in ranks:
            config = dict(base_config, rank=rank)
            config_path = job.scratch / f"rank{rank}.json"
            config_path.write_text(json.dumps(config), encoding="utf-8")
            stdout_path = job.scratch / f"rank{rank}.out"
            stderr_path = job.scratch / f"rank{rank}.err"
            # "starts a new JVM whenever there is a request to execute
            # an MPJE process" — here, a new CPython interpreter.
            process = subprocess.Popen(
                [sys.executable, "-m", "repro.runtime.worker", str(config_path)],
                stdout=stdout_path.open("wb"),
                stderr=stderr_path.open("wb"),
            )
            worker = _WorkerProc(rank, process, stdout_path, stderr_path)
            job.workers.append(worker)
            spawned.append(worker)
        return spawned

    def _grow_job(self, req: dict) -> dict:
        """Dynamic join: spawn additional ranks into a running job.

        The request carries the new ranks plus (optionally) the
        expanded job-wide ``nprocs``/``peers`` table.  Only the *new*
        workers are launched with the expanded table; the established
        ranks keep running untouched — lazy connections mean they never
        held sockets to the newcomers anyway, and they learn the new
        addresses through ``extend_peers`` when intercommunicator
        traffic first reaches them.  Growth is an address-table event,
        not a reconnection event.
        """
        job_id = req["job_id"]
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            return {"ok": False, "error": f"unknown job {job_id!r}"}
        if not job.base_config:
            return {"ok": False, "error": f"job {job_id!r} has no stored config"}
        ranks = req["ranks"]
        clash = sorted(set(ranks) & {w.rank for w in job.workers})
        if clash:
            return {"ok": False, "error": f"ranks {clash} already running"}
        config = dict(job.base_config)
        for key in ("nprocs", "peers"):
            if key in req:
                config[key] = req[key]
        job.base_config = config
        spawned = self._spawn_workers(job, config, ranks)
        return {
            "ok": True,
            "job_id": job_id,
            "ranks": [w.rank for w in spawned],
            "pids": [w.process.pid for w in spawned],
        }

    def _poll_job(self, req: dict) -> dict:
        job_id = req["job_id"]
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            return {"ok": False, "error": f"unknown job {job_id!r}"}
        statuses = []
        for w in job.workers:
            code = w.process.poll()
            entry: dict[str, Any] = {"rank": w.rank, "exit_code": code}
            if code is not None:
                entry["stdout"] = w.stdout_path.read_text(errors="replace")
                entry["stderr"] = w.stderr_path.read_text(errors="replace")
            statuses.append(entry)
        return {"ok": True, "job_id": job_id, "workers": statuses}

    def _stop_job(self, req: dict) -> dict:
        job_id = req["job_id"]
        with self._lock:
            job = self._jobs.pop(job_id, None)
        if job is None:
            return {"ok": False, "error": f"unknown job {job_id!r}"}
        for w in job.workers:
            if w.process.poll() is None:
                w.process.terminate()
        return {"ok": True}

    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        self._shutdown.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
        with self._lock:
            jobs = list(self._jobs.values())
            self._jobs.clear()
        for job in jobs:
            for w in job.workers:
                if w.process.poll() is None:
                    w.process.terminate()


def main(argv: Optional[list[str]] = None) -> int:
    """CLI: ``mpjdaemon [--port N]`` — run a daemon in the foreground."""
    import argparse

    parser = argparse.ArgumentParser(description="MPJ Express compute-node daemon")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    ns = parser.parse_args(argv)
    daemon = Daemon(ns.host, ns.port)
    print(f"mpj daemon listening on {daemon.host}:{daemon.port}", flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
