"""In-process SPMD launcher: ranks as threads.

The paper's central motivation is SMP programming with threads plus a
thread-safe messaging library (Section I).  ``run_spmd`` is the
embodiment: it runs ``main(env)`` once per rank, each rank on its own
OS thread with its own :class:`~repro.mpi.environment.MPJEnvironment`,
wired together by the chosen device's fabric.

Any device can back the job:

* ``smdev`` (default) — in-process queues, deterministic, fast;
* ``procdev`` — shared-memory rings (thread-ranks here; the same
  datapath runs ranks as OS processes under ``mpjrun --local``);
* ``niodev`` — real localhost TCP with the selector progress engine;
* ``mxdev`` — the simulated Myrinet eXpress path;
* ``ibisdev`` — the thread-per-message baseline.

``device=None`` resolves through :func:`repro.xdev.device.default_device`,
honouring the ``REPRO_DEVICE`` environment variable.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.mpi.environment import MPJEnvironment
from repro.xdev.device import DeviceConfig


class SpmdError(Exception):
    """One or more ranks raised; carries every rank's failure."""

    def __init__(self, failures: dict[int, BaseException]) -> None:
        self.failures = failures
        lines = [f"{len(failures)} rank(s) failed:"]
        for rank, exc in sorted(failures.items()):
            tb = "".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            )
            lines.append(f"--- rank {rank} ---\n{tb}")
        super().__init__("\n".join(lines))


def _make_fabric(device: str, nprocs: int):
    """Create the shared wiring object for an in-process job."""
    if device == "smdev":
        from repro.xdev.smdev import SMFabric

        return SMFabric(nprocs), None
    if device == "procdev":
        from repro.xdev.procdev import ProcFabric

        return ProcFabric(nprocs), None
    if device == "mxdev":
        from repro.xdev.mxdev import MXFabric

        return MXFabric(nprocs), None
    if device == "ibisdev":
        from repro.xdev.ibisdev import IbisFabric

        return IbisFabric(nprocs), None
    if device == "niodev":
        from repro.xdev.niodev import allocate_local_endpoints

        addrs, socks = allocate_local_endpoints(nprocs)
        return None, (addrs, socks)
    raise ValueError(f"unknown device {device!r}")


def run_spmd(
    main: Callable[[MPJEnvironment], Any],
    nprocs: int,
    device: Optional[str] = None,
    options: Optional[Mapping[str, Any]] = None,
    timeout: Optional[float] = 120.0,
    args: Sequence[Any] = (),
    trace: bool = False,
) -> list[Any]:
    """Run ``main(env, *args)`` on *nprocs* thread-ranks; returns per-rank results.

    Every rank gets its own environment (device instance, COMM_WORLD,
    buffer pool).  Exceptions in any rank are collected and re-raised
    as :class:`SpmdError` after all ranks stop.  *timeout* bounds the
    whole job (None = unbounded).

    With ``trace=True`` every rank's device is wrapped in a
    :class:`repro.trace.TracingDevice` and the call returns
    ``(results, traces)`` — one tracer per rank, already populated.
    On a timeout the traces survive in ``SpmdError.traces`` so the
    stalled operations can be inspected (``repro.trace.detect_stalled``).
    """
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    if device is None:
        from repro.xdev.device import default_device

        device = default_device()
    fabric, nio = _make_fabric(device, nprocs)
    tracers: list[Any] = [None] * nprocs

    results: list[Any] = [None] * nprocs
    failures: dict[int, BaseException] = {}
    envs: list[Optional[MPJEnvironment]] = [None] * nprocs
    barrier = threading.Barrier(nprocs)

    def worker(rank: int) -> None:
        env: Optional[MPJEnvironment] = None
        # Phase 1: bring the device up.  A failure here aborts the
        # startup barrier so the other ranks don't wait forever.
        try:
            opts = dict(options or {})
            if nio is not None:
                addrs, socks = nio
                opts["listen_socket"] = socks[rank]
                config = DeviceConfig(
                    rank=rank, nprocs=nprocs, peers=addrs, options=opts
                )
            else:
                config = DeviceConfig(
                    rank=rank, nprocs=nprocs, fabric=fabric, options=opts
                )
            env = MPJEnvironment.create(device, config)
            if trace:
                from repro.trace import TracingDevice

                tracer = TracingDevice(env.device)
                tracers[rank] = tracer
                # Rebuild the environment's world over the tracer so
                # every MPI-level operation is recorded.
                env = MPJEnvironment(
                    tracer, env.COMM_WORLD.group().pids, rank, pool=env.pool
                )
            envs[rank] = env
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            failures[rank] = exc
            barrier.abort()
            return
        try:
            barrier.wait()  # all devices up before user code runs
        except threading.BrokenBarrierError:
            return  # another rank failed startup; not this rank's fault
        # Phase 2: user code.  Failures here are this rank's own; the
        # barrier is behind us and must NOT be aborted (doing so would
        # spuriously fail ranks still approaching it in a rare race).
        try:
            results[rank] = main(env, *args)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            failures[rank] = exc

    threads = [
        # Daemon threads: a rank that hangs past the job timeout must
        # not be able to hold the interpreter open at exit.
        threading.Thread(
            target=worker, args=(rank,), name=f"spmd-rank-{rank}", daemon=True
        )
        for rank in range(nprocs)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
    hung = [t for t in threads if t.is_alive()]
    try:
        if hung:
            error = SpmdError(
                {
                    rank: TimeoutError(f"rank {rank} did not finish within {timeout}s")
                    for rank, t in enumerate(threads)
                    if t.is_alive()
                }
            )
            error.traces = tracers if trace else None
            raise error
        if failures:
            error = SpmdError(failures)
            error.traces = tracers if trace else None
            raise error
    finally:
        for env in envs:
            if env is not None and not hung:
                env.finalize()
    return (results, tracers) if trace else results
