"""Local process spawner: procdev or niodev ranks as child processes.

The daemon/mpjrun pair launches ranks across hosts over TCP; procdev
ranks instead share memory, so they must share a *host* — and then no
daemon is needed at all.  ``run_local_job`` is the local counterpart of
:func:`repro.runtime.mpjrun.run_job`: it creates the job's bootstrap —
a shared-memory segment (rings + descriptor) for procdev, an
*addresses-only* peer table for niodev (no sockets: lazy connections
appear on first traffic) — forks one
``python -m repro.runtime.worker`` per rank with the bootstrap in its
config, and babysits the children:

* any rank exiting non-zero (or dying on a signal) gets the rest of
  the job terminated and a :class:`JobError` raised with the failing
  ranks' stderr — the parent never hangs on a half-dead job;
* after reaping, the parent closes the bootstrap segment it owns and
  **sweeps** the job's shared-memory name prefix, unlinking anything a
  killed rank left behind (SIGKILL runs no atexit hook in the child;
  this sweep is the only cleanup such a rank gets);
* per-rank copy-stats snapshots written into the bootstrap's stats
  directory at finalize are merged into ``JobResult.stats`` — job-wide
  numbers, not rank-0-only ones.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.runtime.mpjrun import JobError, JobResult, _extract_result
from repro.shm.bootstrap import ShmBootstrap, active_segments, new_job_id, sweep


def _worker_env(trace_dir: Optional[Path] = None) -> dict[str, str]:
    """Child environment: inherit, but make sure ``repro`` imports.

    The parent may be running from a source checkout that is on
    ``sys.path`` without being on ``PYTHONPATH``; the child is a fresh
    interpreter and only sees the latter.

    Observability env rides along the same way: ``REPRO_METRICS`` /
    ``REPRO_TRACE`` (and its buffer knob) are inherited, so a traced
    ``mpjrun --local`` invocation produces per-rank trace files just
    like an in-process job.  An explicit *trace_dir* overrides the
    inherited ``REPRO_TRACE``; either way the directory is absolutized
    — the children run in the parent's cwd today, but a relative path
    would silently scatter traces if that ever changes.
    """
    env = dict(os.environ)
    pkg_root = str(Path(__file__).resolve().parent.parent.parent)
    parts = env.get("PYTHONPATH", "").split(os.pathsep)
    if pkg_root not in parts:
        env["PYTHONPATH"] = os.pathsep.join([pkg_root] + [p for p in parts if p])
    if trace_dir is not None:
        env["REPRO_TRACE"] = str(Path(trace_dir).resolve())
    elif env.get("REPRO_TRACE", "").strip():
        env["REPRO_TRACE"] = str(Path(env["REPRO_TRACE"]).resolve())
    return env


def _collect_traces(
    env: dict[str, str], pids: list[int]
) -> tuple[Optional[str], list[str]]:
    """This job's trace files: the env's trace dir filtered by rank pid.

    The trace dir may accumulate files across jobs (the bench reuses
    one dir); the worker pids embedded in the file names
    (``…-p<ospid>-…``) pick out exactly this job's output.
    """
    directory = env.get("REPRO_TRACE", "").strip()
    if not directory:
        return None, []
    markers = [f"-p{pid}-" for pid in pids]
    files = sorted(
        str(p)
        for p in Path(directory).glob("*.jsonl")
        if any(marker in p.name for marker in markers)
    )
    return directory, files


def run_local_job(
    nprocs: int,
    module_path: str | Path | None = None,
    *,
    module_source: str | None = None,
    entry: str = "main",
    args: Sequence[Any] = (),
    device: str = "procdev",
    options: Optional[dict] = None,
    timeout: float = 120.0,
    poll_interval: float = 0.05,
    nslots: int = 32,
    slot_bytes: int = 16384,
    trace_dir: str | Path | None = None,
) -> JobResult:
    """Run an SPMD job as local child processes over shared memory.

    Exactly one of *module_path* / *module_source* selects the user
    code (same contract as the daemon path).  Raises :class:`JobError`
    carrying ``job_id`` and the list of ``swept`` leftover segments on
    any failure; on success the job is guaranteed to leave zero named
    segments behind.
    """
    if nprocs < 1:
        raise JobError("nprocs must be >= 1")
    if (module_path is None) == (module_source is None):
        raise JobError("exactly one of module_path/module_source is required")

    job_id = new_job_id()
    workdir = Path(tempfile.mkdtemp(prefix=f"repro-job-{job_id}-"))
    stats_dir = workdir / "stats"
    stats_dir.mkdir()
    opts = dict(options or {})
    peers: list[Any] = []
    bootstrap = None
    if device == "niodev":
        # Addresses-only bootstrap: pre-pick one listen address per
        # rank by briefly binding it, then close the placeholders —
        # each child re-binds its own ``peers[rank]`` (SO_REUSEADDR)
        # and no connection exists until first traffic, so job-wide
        # startup cost is O(n) sockets, not the eager era's O(n²).
        from repro.xdev.niodev import allocate_local_endpoints

        addrs, placeholders = allocate_local_endpoints(nprocs)
        for s in placeholders:
            s.close()
        peers = [list(a) for a in addrs]
    else:
        bootstrap = ShmBootstrap.create(
            job_id,
            nprocs,
            nslots=nslots,
            slot_bytes=slot_bytes,
            stats_dir=str(stats_dir),
        )
        opts["shm_bootstrap"] = bootstrap.descriptor()

    base_config: dict[str, Any] = {
        "nprocs": nprocs,
        "peers": peers,
        "device": device,
        "options": opts,
        "entry": entry,
        "args": list(args),
    }
    if module_source is not None:
        base_config["module_source"] = module_source
    else:
        base_config["module_path"] = str(Path(module_path).resolve())

    if trace_dir is not None:
        Path(trace_dir).mkdir(parents=True, exist_ok=True)
    env = _worker_env(Path(trace_dir) if trace_dir is not None else None)
    procs: list[subprocess.Popen] = []
    swept: list[str] = []
    try:
        for rank in range(nprocs):
            cfg_path = workdir / f"rank{rank}.json"
            cfg_path.write_text(
                json.dumps(dict(base_config, rank=rank)), encoding="utf-8"
            )
            procs.append(
                subprocess.Popen(
                    [sys.executable, "-m", "repro.runtime.worker", str(cfg_path)],
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    text=True,
                    env=env,
                )
            )

        deadline = time.monotonic() + timeout
        while True:
            codes = [p.poll() for p in procs]
            if all(c is not None for c in codes):
                break
            if any(c is not None and c != 0 for c in codes):
                # One rank died; its peers are stuck talking to a
                # corpse. Reap the job now rather than waiting for
                # their ring timeouts.
                _terminate(procs)
                break
            if time.monotonic() > deadline:
                _terminate(procs)
                outs = _drain(procs)
                raise JobError(
                    f"job {job_id} did not finish within {timeout}s",
                    job_id=job_id,
                )
            time.sleep(poll_interval)

        outs = _drain(procs)
        codes = [p.returncode for p in procs]
        if any(code != 0 for code in codes):
            bad = [r for r in range(nprocs) if codes[r] != 0]
            detail = "\n".join(
                f"--- rank {r} (exit {codes[r]}) ---\n{outs[r][1]}" for r in bad
            )
            raise JobError(
                f"job {job_id}: workers failed:\n{detail}", job_id=job_id
            )

        stats = (
            _collect_stats(str(stats_dir), nprocs)
            if bootstrap is not None
            else None
        )
        job_trace_dir, trace_files = _collect_traces(
            env, [p.pid for p in procs]
        )
        result = JobResult(
            job_id,
            [_extract_result(out) for out, _ in outs],
            [out for out, _ in outs],
            [err for _, err in outs],
            codes,
            stats=stats,
            trace_dir=job_trace_dir,
            trace_files=trace_files,
        )
        return result
    except JobError as exc:
        exc.job_id = job_id
        raise
    finally:
        _terminate(procs)
        leftovers: list[str] = []
        if bootstrap is not None:
            bootstrap.close()
            # Reap anything a killed rank had no chance to unlink itself.
            swept.extend(sweep(job_id))
            leftovers = active_segments(job_id)
        shutil.rmtree(workdir, ignore_errors=True)
        # Record sweep results on an in-flight JobError (leak audits
        # read these to prove cleanup actually happened).
        exc_info = sys.exc_info()[1]
        if isinstance(exc_info, JobError):
            exc_info.swept = list(swept)
            exc_info.leaked = leftovers


def _terminate(procs: list[subprocess.Popen]) -> None:
    for p in procs:
        if p.poll() is None:
            p.terminate()
    deadline = time.monotonic() + 5
    for p in procs:
        if p.poll() is None:
            try:
                p.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                p.kill()
                p.wait()


def _drain(procs: list[subprocess.Popen]) -> list[tuple[str, str]]:
    outs = []
    for p in procs:
        try:
            out, err = p.communicate(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - already reaped
            p.kill()
            out, err = p.communicate()
        outs.append((out or "", err or ""))
    return outs


def _collect_stats(stats_dir: str, nprocs: int) -> Optional[dict]:
    from repro.xdev.procdev import collect_job_stats

    try:
        # Children have exited: every snapshot that will ever exist is
        # on disk, so no grace wait is needed.
        return collect_job_stats(stats_dir, nprocs, timeout=0.0)
    except Exception:  # pragma: no cover - stats are best-effort
        return None
