"""Wire protocol between mpjrun and the daemons: JSON lines over TCP.

Each request/response is one JSON object on one line (UTF-8,
newline-terminated).  Commands:

``ping``      — liveness check; returns daemon stats.
``start``     — start worker processes for (part of) a job.
``poll``      — job status: per-rank running/exited + captured output.
``stop``      — kill a job's workers.
``shutdown``  — stop the daemon itself.
"""

from __future__ import annotations

import json
import socket
from typing import Any


class ProtocolError(Exception):
    """Malformed request or response on the daemon channel."""


def send_json(sock: socket.socket, obj: Any) -> None:
    """Write one JSON-line message."""
    data = (json.dumps(obj) + "\n").encode("utf-8")
    sock.sendall(data)


def recv_json(file) -> Any:
    """Read one JSON-line message from a socket makefile."""
    line = file.readline()
    if not line:
        raise ProtocolError("peer closed the connection")
    try:
        return json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"bad JSON from peer: {exc}") from exc


def request(host: str, port: int, obj: Any, timeout: float = 30.0) -> Any:
    """One round-trip to a daemon.

    Transport failures (daemon unreachable, connection reset) surface
    as :class:`ProtocolError` so callers have one failure type.
    """
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            send_json(sock, obj)
            with sock.makefile("r", encoding="utf-8") as f:
                reply = recv_json(f)
    except OSError as exc:
        raise ProtocolError(f"daemon {host}:{port} unreachable: {exc}") from exc
    if not isinstance(reply, dict):
        raise ProtocolError(f"expected an object reply, got {type(reply)}")
    if not reply.get("ok", False):
        raise ProtocolError(f"daemon error: {reply.get('error', 'unknown')}")
    return reply
