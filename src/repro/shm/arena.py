"""Owner-side pool of shared-memory spill segments.

Payloads too large for a ring slot — and every rendezvous payload,
which must land zero-copy in the receiver — travel out-of-band: the
sender acquires a segment here, gathers the user's buffer into it
(its one and only copy onto the "wire"), and ships the segment's
``(name, offset, length)`` handle through the ring.  When the receiver
has landed the bytes it pushes a RELEASE notice back and the segment
returns to this pool.

Pooling is what makes the steady state syscall-free: segments are
size-classed to powers of two, so a ping-pong loop reuses the same
physical pages every iteration instead of shm_open/mmap/unlink per
message.  The arena owns every segment it creates (attachers in peer
processes only ever map and close), so closing the arena — or the
owner's atexit cleanup registry — is sufficient to unlink everything.
"""

from __future__ import annotations

import threading

from repro.buffer.pool import size_class
from repro.shm.segment import NAME_PREFIX, ShmSegment

#: Segments below this round up to it; shm blocks are page-granular
#: anyway, so finer classes would just fragment the pool.
MIN_SEGMENT = 4096


class SegmentArena:
    """Size-classed pool of owned spill segments.

    ``acquire`` hands out an owned segment of at least the requested
    size (pool hit or fresh create); ``release`` accepts the segment's
    *name* — which is all a cross-process RELEASE notice carries — and
    returns it to its class's free list.  Segments in flight are
    tracked so close() can account for (and still unlink) anything a
    crashed peer never released.
    """

    def __init__(self, prefix: str = NAME_PREFIX, max_per_class: int = 4) -> None:
        self._prefix = prefix
        self._max_per_class = max_per_class
        self._lock = threading.Lock()
        self._free: dict[int, list[ShmSegment]] = {}
        self._inflight: dict[str, ShmSegment] = {}
        self._closed = False
        self.hits = 0
        self.misses = 0
        self.created = 0

    def acquire(self, nbytes: int) -> ShmSegment:
        """An owned segment with capacity >= *nbytes*."""
        if nbytes < 1:
            raise ValueError("segment size must be >= 1 byte")
        cls = size_class(max(nbytes, MIN_SEGMENT))
        with self._lock:
            if self._closed:
                raise RuntimeError("arena is closed")
            bucket = self._free.get(cls)
            if bucket:
                seg = bucket.pop()
                self.hits += 1
            else:
                seg = None
                self.misses += 1
        if seg is None:
            seg = ShmSegment.create(cls, prefix=self._prefix)
            with self._lock:
                self.created += 1
        with self._lock:
            self._inflight[seg.name] = seg
        return seg

    def release(self, name: str) -> bool:
        """Return an in-flight segment to the pool; True if it was ours.

        Unknown names are ignored (a RELEASE can arrive after close()
        already tore the arena down during an error unwind).
        """
        with self._lock:
            seg = self._inflight.pop(name, None)
            if seg is None:
                return False
            if self._closed:
                pass  # fall through to close below, outside the lock
            else:
                cls = size_class(max(seg.length, MIN_SEGMENT))
                bucket = self._free.setdefault(cls, [])
                if len(bucket) < self._max_per_class:
                    bucket.append(seg)
                    return True
        seg.close()
        return True

    def inflight_names(self) -> list[str]:
        with self._lock:
            return sorted(self._inflight)

    def close(self) -> dict[str, int]:
        """Unlink everything; returns pool/leak counts for diagnostics.

        In-flight segments are unlinked too — at close time their
        receivers are gone or going, and an unlinked block stays
        mapped in any process still reading it, so this is safe and
        guarantees no named leftovers.
        """
        with self._lock:
            if self._closed:
                return {"pooled": 0, "inflight": 0}
            self._closed = True
            pooled = [s for bucket in self._free.values() for s in bucket]
            inflight = list(self._inflight.values())
            self._free.clear()
            self._inflight.clear()
        for seg in pooled + inflight:
            seg.close()
        return {"pooled": len(pooled), "inflight": len(inflight)}

    def introspect(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "created": self.created,
                "pooled": sum(len(b) for b in self._free.values()),
                "inflight": len(self._inflight),
                "closed": self._closed,
            }
