"""Job-level shared-memory wiring for procdev.

One :class:`ShmBootstrap` per job: a single shared segment holding all
N×N directed SPSC rings (including each rank's self-ring, so self-sends
take the identical datapath), plus the JSON-able *descriptor* a spawned
rank needs to attach — segment handle, geometry, per-rank protocol
uids, and the directory where ranks drop their stats snapshots for the
parent to aggregate.

Naming ties the whole job together: every segment the job creates —
the rings block here, every arena spill segment in every rank — is
named under :func:`job_prefix`, so :func:`active_segments` can audit
and :func:`sweep` can reap leftovers by prefix alone.  That sweep is
the last line of the leak defense: owners unlink on close, the atexit
registry covers exceptional exits, and the spawning parent sweeps the
prefix after reaping children to cover ranks killed with SIGKILL,
which run no Python cleanup at all.
"""

from __future__ import annotations

import os
import secrets
from typing import Optional, Sequence

from repro.shm.ring import SpscRing, ring_bytes
from repro.shm.segment import NAME_PREFIX, ShmSegment, unlink_names

#: Where POSIX shared memory surfaces as files on Linux.
_SHM_DIR = "/dev/shm"


def new_job_id() -> str:
    """A short, filesystem-safe, unguessable job identifier."""
    return f"{os.getpid():x}-{secrets.token_hex(3)}"


def job_prefix(job_id: str) -> str:
    """Name prefix shared by every segment belonging to *job_id*."""
    return f"{NAME_PREFIX}-{job_id}"


def active_segments(job_id: str) -> list[str]:
    """Names of this job's segments still linked in /dev/shm."""
    prefix = job_prefix(job_id) + "-"
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:  # pragma: no cover - non-Linux shm backends
        return []
    return sorted(name for name in entries if name.startswith(prefix))


def sweep(job_id: str) -> list[str]:
    """Unlink every leftover segment of *job_id*; returns the names.

    Safe to run while surviving ranks still hold mappings: an unlinked
    block stays mapped until the last close, only its name goes away.
    """
    return unlink_names(active_segments(job_id))


def _align64(n: int) -> int:
    return (n + 63) & ~63


class ShmBootstrap:
    """The rings segment plus everything a rank needs to attach to it."""

    def __init__(
        self,
        segment: ShmSegment,
        job_id: str,
        nprocs: int,
        nslots: int,
        slot_bytes: int,
        uids: Sequence[int],
        stats_dir: Optional[str],
    ) -> None:
        self.segment = segment
        self.job_id = job_id
        self.nprocs = nprocs
        self.nslots = nslots
        self.slot_bytes = slot_bytes
        self.uids = list(uids)
        self.stats_dir = stats_dir
        self._stride = _align64(ring_bytes(nslots, slot_bytes))

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def create(
        cls,
        job_id: str,
        nprocs: int,
        *,
        nslots: int = 32,
        slot_bytes: int = 16384,
        uids: Optional[Sequence[int]] = None,
        stats_dir: Optional[str] = None,
    ) -> "ShmBootstrap":
        """Create and own the rings segment for an N-rank job.

        Fresh POSIX shm is zero-filled, which is exactly the initial
        ring state (head == tail == 0), so no formatting pass is
        needed.  *uids* are the ranks' protocol-level ProcessID uids;
        they default to ``1..nprocs`` and must be unique within the
        job because frame routing matches on them.
        """
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if uids is None:
            uids = list(range(1, nprocs + 1))
        if len(set(uids)) != nprocs:
            raise ValueError(f"need {nprocs} unique uids, got {uids!r}")
        stride = _align64(ring_bytes(nslots, slot_bytes))
        segment = ShmSegment.create(
            nprocs * nprocs * stride, prefix=job_prefix(job_id)
        )
        return cls(segment, job_id, nprocs, nslots, slot_bytes, uids, stats_dir)

    @classmethod
    def attach(cls, descriptor: dict) -> "ShmBootstrap":
        """Map the rings segment described by a parent's descriptor."""
        name, offset, length = descriptor["segment"]
        segment = ShmSegment.attach((name, int(offset), int(length)))
        return cls(
            segment,
            descriptor["job_id"],
            int(descriptor["nprocs"]),
            int(descriptor["nslots"]),
            int(descriptor["slot_bytes"]),
            [int(u) for u in descriptor["uids"]],
            descriptor.get("stats_dir"),
        )

    def descriptor(self) -> dict:
        """JSON-able attach recipe, shipped to workers in their config."""
        return {
            "job_id": self.job_id,
            "nprocs": self.nprocs,
            "nslots": self.nslots,
            "slot_bytes": self.slot_bytes,
            "uids": list(self.uids),
            "stats_dir": self.stats_dir,
            "segment": list(self.segment.handle()),
        }

    # ------------------------------------------------------------------
    # access

    def ring(self, src: int, dst: int) -> SpscRing:
        """The directed ring carrying frames from rank *src* to *dst*."""
        if not (0 <= src < self.nprocs and 0 <= dst < self.nprocs):
            raise IndexError(f"ring({src}, {dst}) in a {self.nprocs}-rank job")
        offset = (src * self.nprocs + dst) * self._stride
        view = self.segment.view(offset, self._stride)
        return SpscRing(view, self.nslots, self.slot_bytes)

    def arena_prefix(self) -> str:
        """Name prefix arenas must use so the job sweep finds their spills."""
        return job_prefix(self.job_id)

    def close(self) -> None:
        """Drop the mapping; the owning side also unlinks the segment."""
        self.segment.close()

    def introspect(self) -> dict:
        return {
            "job_id": self.job_id,
            "nprocs": self.nprocs,
            "nslots": self.nslots,
            "slot_bytes": self.slot_bytes,
            "segment": self.segment.name,
            "segment_bytes": self.segment.length,
            "owner": self.segment.owner,
        }
