"""Cross-process shared-memory plumbing for the procdev transport.

smdev proved the sharded engine is lock-clean, and PR 5's thread
benchmark measured the hard ceiling: on the GIL, more threads never buy
more bandwidth.  This package is the other half of the answer — ranks
as OS *processes*, wired through ``multiprocessing.shared_memory``:

* :mod:`repro.shm.segment` — :class:`ShmSegment`, a named segment
  window whose handle pickles as ``(name, offset, length)`` and
  reattaches in a peer process, plus the process-wide cleanup registry
  that guarantees unlink-exactly-once at interpreter shutdown.
* :mod:`repro.shm.ring` — :class:`SpscRing`, a fixed-slot
  single-producer/single-consumer frame ring laid out directly in
  shared memory, and :class:`Backoff`, the futex-style adaptive
  spin-then-sleep waiter both sides poll with.
* :mod:`repro.shm.arena` — :class:`SegmentArena`, the owner-side pool
  of size-classed spill segments that carries every payload too large
  for a ring slot (and every rendezvous payload — the cross-process
  zero-copy landing path).
* :mod:`repro.shm.bootstrap` — :class:`ShmBootstrap`, the job wiring:
  one rings segment for all N×N directed rings plus the JSON-able
  descriptor a spawned rank needs to attach, and the
  :func:`~repro.shm.bootstrap.sweep` crash-cleanup that unlinks
  leftovers by job prefix.
"""

from repro.shm.arena import SegmentArena
from repro.shm.bootstrap import ShmBootstrap, active_segments, job_prefix, sweep
from repro.shm.ring import Backoff, RingStalledError, SpscRing
from repro.shm.segment import ShmSegment, cleanup_registry

__all__ = [
    "Backoff",
    "RingStalledError",
    "SegmentArena",
    "ShmBootstrap",
    "ShmSegment",
    "SpscRing",
    "active_segments",
    "cleanup_registry",
    "job_prefix",
    "sweep",
]
