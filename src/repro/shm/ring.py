"""Fixed-slot SPSC frame rings in shared memory, with adaptive polling.

One :class:`SpscRing` carries frames in one direction between exactly
one producer process and one consumer process.  The layout lives
entirely inside a caller-provided byte window (a slice of a shared
segment), so the same class drives both sides: the producer maps the
window and writes, the consumer maps it and reads.

Layout::

    offset   0: head  (u64, little endian)  — consumer's cursor
    offset  64: tail  (u64, little endian)  — producer's cursor
    offset 128: nslots × slot_bytes slots

    slot: | frame_len u32 | kind u8 | pad ×3 | frame bytes ... |

Cursors are monotonic counts (slot index = count % nslots), each
written by exactly one side and read by the other — the classic SPSC
argument: a stale read of the *other* side's cursor is conservative
(producer under-estimates free slots, consumer under-estimates filled
ones), never unsafe.  The 64-byte separation keeps the two cursors on
different cache lines.  Data is fully written before the tail is
published; on x86's total-store-order (and under CPython's own
byte-level ``memcpy`` granularity) that is the required store ordering.

There is no futex syscall in portable Python, so the doorbell is
:class:`Backoff` — bounded spinning that decays into escalating sleeps
(micro- to sub-millisecond), reset on progress.  Busy streams poll hot;
idle rings cost one short sleep per round.
"""

from __future__ import annotations

import struct
import threading
import time
from typing import Callable, Optional, Sequence

_U64 = struct.Struct("<Q")
_SLOT_HDR = struct.Struct("<IBxxx")  # frame length, kind

#: Byte offsets of the two cursors, cache-line separated.
_HEAD_OFF = 0
_TAIL_OFF = 64
#: First slot starts here.
RING_HEADER = 128
#: Per-slot bookkeeping in front of the frame bytes.
SLOT_HEADER = _SLOT_HDR.size

#: Slot kinds: a complete wire frame inline; a frame whose payload
#: spilled to an arena segment (slot carries header + pickled handle);
#: a transport-internal release notice returning a spill segment.
KIND_FRAME = 0
KIND_SPILL = 1
KIND_RELEASE = 2


class RingStalledError(Exception):
    """A push could not complete: the consumer stopped draining."""


class Backoff:
    """Adaptive spin-then-sleep waiter (the futex-style doorbell).

    ``wait()`` burns a handful of GIL-friendly spins first (a busy
    peer usually answers within microseconds), then yields, then
    sleeps for exponentially growing slices capped at *max_sleep*.
    ``reset()`` after any progress snaps back to spinning.
    """

    __slots__ = ("spins", "max_sleep", "_round", "_sleep")

    def __init__(self, spins: int = 32, max_sleep: float = 200e-6) -> None:
        self.spins = spins
        self.max_sleep = max_sleep
        self._round = 0
        self._sleep = 1e-6

    def reset(self) -> None:
        self._round = 0
        self._sleep = 1e-6

    # reprolint: allow[no-block-in-poller] -- bounded doorbell, not a wait: spins, yields, then sleeps capped at max_sleep; reset() on any progress, and callers never hold a peer's resource across it
    def wait(self) -> None:
        self._round += 1
        if self._round <= self.spins:
            return
        if self._round <= self.spins * 2:
            time.sleep(0)  # yield the GIL/CPU without arming a timer
            return
        time.sleep(self._sleep)
        self._sleep = min(self._sleep * 2, self.max_sleep)


def ring_bytes(nslots: int, slot_bytes: int) -> int:
    """Total window size one ring occupies."""
    return RING_HEADER + nslots * (SLOT_HEADER + slot_bytes)


class SpscRing:
    """One direction of a rank pair's frame channel."""

    __slots__ = ("_view", "nslots", "slot_bytes", "_stride", "_pending", "_pending_view")

    def __init__(self, view: memoryview, nslots: int, slot_bytes: int) -> None:
        if nslots < 2:
            raise ValueError("a ring needs at least 2 slots")
        need = ring_bytes(nslots, slot_bytes)
        if len(view) < need:
            raise ValueError(f"ring window of {len(view)} bytes, need {need}")
        self._view = view
        self.nslots = nslots
        #: Frame capacity of one slot (the inline/spill switch point).
        self.slot_bytes = slot_bytes
        self._stride = SLOT_HEADER + slot_bytes
        self._pending: Optional[int] = None  # count of a polled, unconsumed slot
        self._pending_view: Optional[memoryview] = None

    # ------------------------------------------------------------------
    # cursors

    @property
    def head(self) -> int:
        return _U64.unpack_from(self._view, _HEAD_OFF)[0]

    @property
    def tail(self) -> int:
        return _U64.unpack_from(self._view, _TAIL_OFF)[0]

    def _set_head(self, value: int) -> None:
        _U64.pack_into(self._view, _HEAD_OFF, value)

    def _set_tail(self, value: int) -> None:
        _U64.pack_into(self._view, _TAIL_OFF, value)

    def __len__(self) -> int:
        """Frames enqueued but not yet consumed (approximate from afar)."""
        return max(0, self.tail - self.head)

    # ------------------------------------------------------------------
    # producer side

    def try_push(self, kind: int, chunks: Sequence[bytes | memoryview]) -> bool:
        """Write one frame if a slot is free; False when the ring is full."""
        total = sum(len(c) for c in chunks)
        if total > self.slot_bytes:
            raise ValueError(
                f"frame of {total} bytes exceeds slot capacity {self.slot_bytes}"
            )
        tail = self.tail
        if tail - self.head >= self.nslots:
            return False
        base = RING_HEADER + (tail % self.nslots) * self._stride
        _SLOT_HDR.pack_into(self._view, base, total, kind)
        offset = base + SLOT_HEADER
        for chunk in chunks:
            cv = memoryview(chunk).cast("B") if not isinstance(chunk, bytes) else chunk
            self._view[offset : offset + len(cv)] = cv
            offset += len(cv)
        # Publish only after the slot is fully written.
        self._set_tail(tail + 1)
        return True

    def push(
        self,
        kind: int,
        chunks: Sequence[bytes | memoryview],
        timeout: Optional[float] = 60.0,
        should_abort: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Blocking push with adaptive backoff.

        Raises :class:`RingStalledError` when the consumer has not
        freed a slot within *timeout* seconds, or as soon as
        *should_abort* reports the job is being torn down — a dead
        peer must fail the operation, not wedge the sender forever.
        """
        if self.try_push(kind, chunks):
            return
        backoff = Backoff()
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if should_abort is not None and should_abort():
                raise RingStalledError("transport closing while ring full")
            backoff.wait()
            if self.try_push(kind, chunks):
                return
            if deadline is not None and time.monotonic() > deadline:
                raise RingStalledError(
                    f"ring full for {timeout}s ({self.nslots} slots); "
                    "consumer stopped draining"
                )

    # ------------------------------------------------------------------
    # consumer side

    def poll(self) -> Optional[tuple[int, memoryview]]:
        """The next frame as ``(kind, view)``, or None when empty.

        The view aliases the slot in shared memory and stays valid
        until :meth:`consume`, which releases it and frees the slot
        for the producer — so a consumer may parse (or hand the
        engine) the frame bytes in place, then consume, but must not
        retain the view past that point.  Poll is idempotent until
        then.
        """
        head = self.head
        if self.tail - head <= 0:
            return None
        base = RING_HEADER + (head % self.nslots) * self._stride
        length, kind = _SLOT_HDR.unpack_from(self._view, base)
        start = base + SLOT_HEADER
        self._pending = head
        self._pending_view = self._view[start : start + length]
        return kind, self._pending_view

    def consume(self) -> None:
        """Release the slot returned by the last :meth:`poll`."""
        if self._pending is None:
            raise RuntimeError("consume() without a pending poll()")
        if self._pending_view is not None:
            try:
                self._pending_view.release()
            except BufferError:  # pragma: no cover - caller kept a sub-view
                pass
            self._pending_view = None
        self._set_head(self._pending + 1)
        self._pending = None


class RingSet:
    """Producer-side serialization over a set of outbound rings.

    The engine's channel locks already serialize protocol writes per
    destination, but the transport itself also pushes release notices
    from its poller thread — two producers for one SPSC ring.  This
    tiny wrapper gives each outbound ring its own lock so the single-
    producer invariant holds whoever is pushing.
    """

    __slots__ = ("rings", "_locks")

    def __init__(self, rings: Sequence[SpscRing]) -> None:
        self.rings = list(rings)
        self._locks = [threading.Lock() for _ in self.rings]

    def try_push(self, dest: int, kind: int, chunks) -> bool:
        with self._locks[dest]:
            return self.rings[dest].try_push(kind, chunks)

    def push(self, dest: int, kind: int, chunks, timeout=60.0, should_abort=None) -> None:
        with self._locks[dest]:
            self.rings[dest].push(kind, chunks, timeout=timeout, should_abort=should_abort)
