"""Named shared-memory segments with picklable cross-process handles.

A :class:`ShmSegment` is a ``(name, offset, length)`` window onto a
POSIX shared-memory block.  The *owner* (the process that created the
block) is responsible for unlinking it exactly once; *attachers* map an
existing block by name and only ever close their mapping.  Pickling a
segment serializes just the handle, so a handle embedded in a frame
reattaches in the receiving process — the mechanism procdev uses to
extend the zero-copy landing contract across address spaces.

Leak discipline (the part that has to survive crashes):

* every owned block is recorded in the process-wide
  :class:`CleanupRegistry`, whose ``atexit`` hook unlinks anything
  still registered — unlink is guarded so double calls (explicit close
  followed by the hook, or two racing finalizers) are no-ops;
* attachments are *unregistered* from CPython's multiprocessing
  ``resource_tracker``, which would otherwise believe each attaching
  process owns the block and both warn and double-unlink it at exit
  (Python < 3.13 has no ``track=False``);
* a rank killed with SIGKILL runs neither — that hole is closed by the
  job-level sweep in :mod:`repro.shm.bootstrap`, which the spawning
  parent runs over the job's name prefix after reaping children.
"""

from __future__ import annotations

import atexit
import itertools
import os
import secrets
import threading
from multiprocessing import shared_memory
from typing import Iterable, Optional

#: Every segment name this codebase creates starts with this, so crash
#: sweeps can recognize their own leftovers and never touch anything
#: else living in /dev/shm.
NAME_PREFIX = "repro-shm"

_seq = itertools.count()
_seq_lock = threading.Lock()


def _next_name(prefix: str) -> str:
    with _seq_lock:
        n = next(_seq)
    # pid + sequence uniquifies within a host; the random suffix keeps
    # names unguessable across recycled pids.
    return f"{prefix}-{os.getpid()}-{n}-{secrets.token_hex(4)}"


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Stop the resource tracker from 'owning' an attached block.

    ``SharedMemory(name=...)`` on Python < 3.13 registers the mapping
    with the multiprocessing resource tracker even when attaching, so
    every attaching process would try to unlink the block at exit and
    print "leaked shared_memory" warnings.  Ownership here is explicit
    (creator unlinks, attachers close), so attachments are unregistered.

    Exception: when this same process also *owns* the block (in-process
    fabrics attach their own segments), the tracker holds exactly one
    entry for the name, and ``unlink()`` will unregister it — removing
    it here as well would make that later unregister a tracker error.
    """
    if _REGISTRY.owns(shm.name):
        return
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
    except Exception:  # pragma: no cover - tracker absent/refactored
        pass


class CleanupRegistry:
    """Process-wide record of owned segments; unlinks leftovers at exit.

    ``register``/``forget`` bracket a block's owned lifetime.  The
    ``atexit``-installed :meth:`cleanup` unlinks whatever is still
    registered — the guarantee that a rank that dies mid-job with live
    segments (an exception unwinding past device teardown) still
    unlinks them, exactly once, with no resource-tracker involvement.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._owned: dict[str, shared_memory.SharedMemory] = {}
        self._installed = False

    def register(self, shm: shared_memory.SharedMemory) -> None:
        with self._lock:
            if not self._installed:
                atexit.register(self.cleanup)
                self._installed = True
            self._owned[shm.name] = shm

    def forget(self, name: str) -> bool:
        """Drop *name* from the registry; True if it was registered.

        The single-unlink guard: whoever successfully forgets the name
        performs the unlink, everyone else sees False and does nothing.
        """
        with self._lock:
            return self._owned.pop(name, None) is not None

    def owned_names(self) -> list[str]:
        with self._lock:
            return sorted(self._owned)

    def owns(self, name: str) -> bool:
        with self._lock:
            return name in self._owned

    def cleanup(self) -> list[str]:
        """Unlink every still-registered block; returns their names."""
        with self._lock:
            leftovers = list(self._owned.items())
            self._owned.clear()
        cleaned = []
        for name, shm in leftovers:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - exported views at exit
                pass
            try:
                shm.unlink()
                cleaned.append(name)
            except FileNotFoundError:
                pass
            except Exception:  # pragma: no cover - platform oddities
                pass
        return cleaned


_REGISTRY = CleanupRegistry()


def cleanup_registry() -> CleanupRegistry:
    """The process-wide owned-segment registry (tests, diagnostics)."""
    return _REGISTRY


class ShmSegment:
    """A window onto a named shared-memory block.

    ``handle()`` → ``(name, offset, length)`` is the cross-process
    identity; :meth:`attach` (and pickling, which round-trips through
    the handle) maps the same physical pages in another process.
    """

    __slots__ = ("name", "offset", "length", "_shm", "_owner", "_views")

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        offset: int,
        length: int,
        owner: bool,
    ) -> None:
        self.name = shm.name
        self.offset = offset
        self.length = length
        self._shm = shm
        self._owner = owner
        self._views: list[memoryview] = []

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def create(cls, nbytes: int, prefix: str = NAME_PREFIX) -> "ShmSegment":
        """Create and own a fresh block of at least *nbytes*."""
        if nbytes < 1:
            raise ValueError("segment size must be >= 1 byte")
        shm = shared_memory.SharedMemory(
            name=_next_name(prefix), create=True, size=nbytes
        )
        _REGISTRY.register(shm)
        return cls(shm, 0, nbytes, owner=True)

    @classmethod
    def attach(cls, handle: tuple[str, int, int]) -> "ShmSegment":
        """Map an existing block by handle (non-owning)."""
        name, offset, length = handle
        shm = shared_memory.SharedMemory(name=name)
        _untrack(shm)
        if offset < 0 or length < 0 or offset + length > shm.size:
            shm.close()
            raise ValueError(
                f"handle {handle!r} overruns segment of {shm.size} bytes"
            )
        return cls(shm, offset, length, owner=False)

    @classmethod
    def attach_block(cls, name: str) -> "ShmSegment":
        """Map a whole existing block by bare name (non-owning).

        Receiver-side attach caches use this: one mapping covers every
        window a pooled sender segment will ever carry, whatever
        offset/length each individual message uses.
        """
        shm = shared_memory.SharedMemory(name=name)
        _untrack(shm)
        return cls(shm, 0, shm.size, owner=False)

    # ------------------------------------------------------------------
    # identity

    @property
    def owner(self) -> bool:
        return self._owner

    @property
    def capacity(self) -> int:
        """Size of the whole underlying block (>= offset + length)."""
        return self._shm.size

    def handle(self) -> tuple[str, int, int]:
        return (self.name, self.offset, self.length)

    def window(self, offset: int, length: int) -> tuple[str, int, int]:
        """A sub-window handle relative to this segment's base offset."""
        if offset < 0 or length < 0 or self.offset + offset + length > self._shm.size:
            raise ValueError("window overruns segment")
        return (self.name, self.offset + offset, length)

    def __reduce__(self):
        # Pickling ships the handle; unpickling reattaches in the peer.
        return (ShmSegment.attach, (self.handle(),))

    # ------------------------------------------------------------------
    # access

    def view(
        self, offset: int = 0, length: Optional[int] = None, *, track: bool = True
    ) -> memoryview:
        """A writable byte view of (a slice of) the window.

        Tracked views are released by :meth:`close`; pass
        ``track=False`` for a transient view the caller releases
        itself (hot paths that would otherwise grow the tracking list
        on every reuse of a pooled segment).
        """
        if length is None:
            length = self.length - offset
        if offset < 0 or length < 0 or offset + length > self.length:
            raise ValueError("view overruns segment window")
        base = self.offset + offset
        mv = memoryview(self._shm.buf)[base : base + length]
        if track:
            self._views.append(mv)
        return mv

    # ------------------------------------------------------------------
    # teardown

    def _release_views(self) -> None:
        for mv in self._views:
            try:
                mv.release()
            except Exception:  # pragma: no cover - exported sub-views
                pass
        self._views.clear()

    def close(self) -> None:
        """Drop this process's mapping (and unlink if we own the block)."""
        self._release_views()
        if self._owner:
            self.unlink()
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a consumer kept a view
            pass

    def unlink(self) -> bool:
        """Remove the block's name, exactly once; True if we did it."""
        if not _REGISTRY.forget(self.name) and self._owner:
            return False  # already unlinked (close raced the atexit hook)
        if not self._owner:
            return False
        try:
            self._shm.unlink()
            return True
        except FileNotFoundError:
            return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        role = "owner" if self._owner else "attached"
        return f"ShmSegment({self.name}[{self.offset}:+{self.length}], {role})"


def unlink_names(names: Iterable[str]) -> list[str]:
    """Best-effort unlink of segments by bare name; returns those removed.

    Used by crash sweeps: the blocks may belong to a process that can
    no longer clean up after itself, so attach-and-unlink is the only
    handle we have on them.
    """
    removed = []
    for name in names:
        try:
            shm = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        # No _untrack here: attaching registered the name with this
        # process's resource tracker, and unlink() below unregisters
        # it — the pair is balanced as-is.
        try:
            shm.close()
        except BufferError:  # pragma: no cover
            pass
        try:
            shm.unlink()
            removed.append(name)
        except FileNotFoundError:
            pass
    return removed
