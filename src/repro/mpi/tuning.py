"""Benchmark-driven collective algorithm selection.

Every tunable collective call consults a :class:`DecisionTable` keyed
on (collective, message bytes, communicator size) — the same shape as
MPICH's ``coll_tuning`` tables or Open MPI's ``coll_tuned`` decision
functions.  Three layers, first hit wins:

1. A per-communicator manual override
   (:meth:`~repro.mpi.intracomm.Intracomm.set_collective_algorithm`).
2. The table named by the ``REPRO_COLL_TUNING`` environment variable —
   a JSON file produced by ``python -m repro.bench tune-coll`` (or by
   hand; the format is below).
3. :data:`BUILTIN`, thresholds picked from smdev benchmarks on this
   codebase (see BENCH_collectives.json and docs/performance.md).

Table JSON format (``repro-coll-tuning-v1``)::

    {
      "format": "repro-coll-tuning-v1",
      "tables": {
        "allreduce": [
          {"algorithm": "recursive_doubling", "max_bytes": 131072},
          {"algorithm": "rabenseifner"}
        ],
        ...
      }
    }

Each collective maps to an ordered rule list; a rule matches when the
message is at most ``max_bytes`` AND the communicator at most
``max_procs`` (either bound may be omitted = unbounded); the first
match names the algorithm.  No match falls through to the next layer.
Selection inputs are identical on every rank, so every rank picks the
same algorithm — the property that keeps mixed-algorithm deadlocks
impossible by construction.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.mpi.exceptions import MPIException

#: Environment variable naming a tuned decision-table JSON file.
ENV = "REPRO_COLL_TUNING"

#: Format tag written into (and required of) table files.
FORMAT = "repro-coll-tuning-v1"


@dataclass(frozen=True)
class Rule:
    """One decision-table row: *algorithm* applies while the message is
    at most *max_bytes* and the communicator at most *max_procs*
    (None = unbounded)."""

    algorithm: str
    max_bytes: Optional[int] = None
    max_procs: Optional[int] = None

    def matches(self, nbytes: int, nprocs: int) -> bool:
        if self.max_bytes is not None and nbytes > self.max_bytes:
            return False
        if self.max_procs is not None and nprocs > self.max_procs:
            return False
        return True

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"algorithm": self.algorithm}
        if self.max_bytes is not None:
            out["max_bytes"] = self.max_bytes
        if self.max_procs is not None:
            out["max_procs"] = self.max_procs
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Rule":
        try:
            algorithm = data["algorithm"]
        except (KeyError, TypeError):
            raise MPIException(f"tuning rule {data!r} has no 'algorithm'")
        max_bytes = data.get("max_bytes")
        max_procs = data.get("max_procs")
        for bound in (max_bytes, max_procs):
            if bound is not None and (not isinstance(bound, int) or bound < 0):
                raise MPIException(
                    f"tuning rule bound {bound!r} must be a non-negative int"
                )
        return cls(algorithm=algorithm, max_bytes=max_bytes, max_procs=max_procs)


class DecisionTable:
    """Ordered per-collective rule lists; first matching rule wins."""

    def __init__(self, tables: Optional[dict[str, Sequence[Rule]]] = None) -> None:
        self.tables: dict[str, list[Rule]] = {
            coll: list(rules) for coll, rules in (tables or {}).items()
        }

    def choose(self, collective: str, nbytes: int, nprocs: int) -> Optional[str]:
        """The first matching algorithm name, or None (no opinion)."""
        for rule in self.tables.get(collective, ()):
            if rule.matches(nbytes, nprocs):
                return rule.algorithm
        return None

    # -- (de)serialization ----------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": FORMAT,
            "tables": {
                coll: [rule.to_dict() for rule in rules]
                for coll, rules in sorted(self.tables.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DecisionTable":
        from repro.mpi import algorithms

        if data.get("format") != FORMAT:
            raise MPIException(
                f"tuning table format {data.get('format')!r} is not {FORMAT!r}"
            )
        tables: dict[str, list[Rule]] = {}
        for coll, raw_rules in data.get("tables", {}).items():
            rules = [Rule.from_dict(r) for r in raw_rules]
            for rule in rules:
                algorithms.validate(coll, rule.algorithm)
            tables[coll] = rules
        return cls(tables)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "DecisionTable":
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


#: Built-in decision table.  Thresholds come from interleaved smdev
#: 8-rank sweeps (``python -m repro.bench tune-coll`` — see
#: BENCH_collectives.json): on shared memory, payload handoff is by
#: reference, so wire-bandwidth terms vanish and message count plus
#: root serialization dominate.  That inverts the textbook large-
#: message picture: the bandwidth-optimal algorithms (Rabenseifner,
#: recursive doubling, ring) trade one big transfer for many partial
#: ones, which is exactly the wrong trade when transfers are
#: reference handoffs — so flat linear trees and the composed
#: reduce+bcast (whose sub-collectives tune themselves through this
#: same table) win at every measured size.  Re-tune for
#: network fabrics and load via ``REPRO_COLL_TUNING`` — there the
#: crossovers flip back toward the bandwidth-optimal algorithms (the
#: netsim models in repro.netsim.collectives show where).  An empty
#: rule list means the built-in default (algorithms.DEFAULTS) always
#: wins.
BUILTIN = DecisionTable(
    {
        "bcast": [Rule("linear")],
        "reduce": [Rule("linear")],
        "allreduce": [],  # default reduce_bcast + self-tuned subs wins
        "allgather": [Rule("gather_bcast")],
        "allgatherv": [],  # default gather_bcast wins at every size
        "gather": [],  # default linear wins at every size
        "scatter": [],  # default linear wins at every size
        "reduce_scatter": [],  # default reduce_scatterv wins at every size
    }
)

# Cache for the env-named table: (env value, table-or-None).  The env
# value is re-read on every select() so tests (and long-running tools)
# can point REPRO_COLL_TUNING somewhere else mid-process.
_loaded: tuple[Optional[str], Optional[DecisionTable]] = (None, None)


def _env_table() -> Optional[DecisionTable]:
    global _loaded
    path = os.environ.get(ENV) or None
    if path == _loaded[0]:
        return _loaded[1]
    table: Optional[DecisionTable] = None
    if path:
        try:
            table = DecisionTable.load(path)
        except (OSError, ValueError, MPIException) as exc:
            import warnings

            warnings.warn(
                f"ignoring {ENV}={path!r}: {exc}", RuntimeWarning, stacklevel=3
            )
    _loaded = (path, table)
    return table


def select(collective: str, nbytes: int, nprocs: int) -> Optional[str]:
    """Pick an algorithm for one collective call, or None (use default).

    Consults the ``REPRO_COLL_TUNING`` table first (when set and
    loadable), then :data:`BUILTIN`.
    """
    table = _env_table()
    if table is not None:
        choice = table.choose(collective, nbytes, nprocs)
        if choice is not None:
            return choice
    return BUILTIN.choose(collective, nbytes, nprocs)
