"""MPI environment: initialization, thread levels, COMM_WORLD.

The paper (Section IV-B): "The MPI 2.0 specification introduced the
notion of thread compliant MPI implementation ... MPJ Express runs
with level MPI_THREAD_MULTIPLE by default.  A MPJE process can have
multiple threads, which can communicate with other processes without
any restriction."

This reproduction does the same: :func:`MPJEnvironment.init_thread`
always *provides* ``THREAD_MULTIPLE`` whatever level was requested,
and the whole device stack is built to honour it (see the
multi-threaded tests and the ProgressionTest).

Because ranks may be threads of one Python process (the launcher's
default), MPI state is **per environment object**, not per interpreter:
each rank owns an ``MPJEnvironment`` with its own device and
COMM_WORLD.
"""

from __future__ import annotations

import threading
import time
from typing import Optional, Sequence

from repro.buffer.pool import BufferPool
from repro.mpi.exceptions import MPIException
from repro.mpi.group import Group
from repro.mpi.intracomm import ContextCounter, Intracomm
from repro.mpjdev.comm import MPJDevComm
from repro.xdev.device import Device, DeviceConfig, new_instance
from repro.xdev.processid import ProcessID

# MPI 2.0 thread-support levels.
THREAD_SINGLE = 0
THREAD_FUNNELED = 1
THREAD_SERIALIZED = 2
THREAD_MULTIPLE = 3

_LEVEL_NAMES = {
    THREAD_SINGLE: "MPI_THREAD_SINGLE",
    THREAD_FUNNELED: "MPI_THREAD_FUNNELED",
    THREAD_SERIALIZED: "MPI_THREAD_SERIALIZED",
    THREAD_MULTIPLE: "MPI_THREAD_MULTIPLE",
}

#: Context ids reserved for COMM_WORLD (pt2pt, collectives).
WORLD_CONTEXTS = (0, 1)


class MPJEnvironment:
    """One rank's MPI world: device, COMM_WORLD, thread level."""

    def __init__(
        self,
        device: Device,
        pids: Sequence[ProcessID],
        rank: int,
        pool: Optional[BufferPool] = None,
    ) -> None:
        self.device = device
        self.pool = pool if pool is not None else BufferPool()
        self._rank = rank
        self._pids = list(pids)
        self._finalized = False
        #: Metrics snapshot captured at Finalize (repro.obs); None until
        #: then, or when the device carries no metrics registry.
        self.final_metrics: Optional[dict] = None
        self._thread_level = THREAD_MULTIPLE
        self._main_thread = threading.current_thread()
        my_uid = self._pids[rank].uid
        group = Group(self._pids, my_uid=my_uid)
        devcomm = MPJDevComm(device, self._pids, rank)
        self.COMM_WORLD = Intracomm(
            devcomm,
            group,
            WORLD_CONTEXTS,
            pool=self.pool,
            env=self,
            context_counter=ContextCounter(start=WORLD_CONTEXTS[1] + 1),
        )
        #: COMM_SELF: just this process.
        self.COMM_SELF = Intracomm(
            devcomm.sub_comm([rank], 0),
            Group([self._pids[rank]], my_uid=my_uid),
            # A context pair reserved below the dynamic range; SELF
            # traffic only ever matches itself.
            (0x7FF0, 0x7FF1),
            pool=self.pool,
            env=self,
        )

    # ------------------------------------------------------------------
    # construction helpers

    @classmethod
    def create(
        cls,
        device_name: str,
        config: DeviceConfig,
        pool: Optional[BufferPool] = None,
    ) -> "MPJEnvironment":
        """Instantiate a device, init it, and build the environment."""
        device = new_instance(device_name)
        pids = device.init(config)
        return cls(device, pids, config.rank, pool=pool)

    # ------------------------------------------------------------------
    # thread support (MPI 2.0 additions, Java bindings promised by the
    # paper's Section IV-B)

    def init_thread(self, required: int) -> int:
        """Request a thread level; MPJ Express always provides MULTIPLE."""
        if required not in _LEVEL_NAMES:
            raise MPIException(f"unknown thread level {required}")
        self._thread_level = THREAD_MULTIPLE
        return self._thread_level

    def query_thread(self) -> int:
        """Currently provided thread level (always THREAD_MULTIPLE)."""
        return self._thread_level

    def is_thread_main(self) -> bool:
        """True on the thread that created this environment."""
        return threading.current_thread() is self._main_thread

    Init_thread = init_thread
    Query_thread = query_thread
    Is_thread_main = is_thread_main

    # ------------------------------------------------------------------
    # identity & timing

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return len(self._pids)

    @staticmethod
    def get_processor_name() -> str:
        """Hostname of this node (MPI_Get_processor_name)."""
        import socket

        return socket.gethostname()

    @staticmethod
    def get_version() -> tuple[int, int]:
        """(major, minor) of the MPI standard level implemented.

        1.2 — the mpijava 1.2 API the paper implements, plus the
        MPI 2.0 thread-environment calls (Section IV-B)."""
        return (1, 2)

    Get_processor_name = get_processor_name
    Get_version = get_version

    def abort(self, errorcode: int = 1) -> None:
        """Abandon the job (MPI_Abort).

        Tears the device down immediately and raises; with the thread
        launcher this fails the rank (and the job via SpmdError), with
        the process runtime it exits the worker non-zero.
        """
        self._finalized = True
        try:
            self.device.finish()
        finally:
            raise MPIException(f"MPI_Abort called with errorcode {errorcode}")

    Abort = abort

    @staticmethod
    def wtime() -> float:
        """Monotonic wall-clock seconds (MPI_Wtime)."""
        return time.perf_counter()

    @staticmethod
    def wtick() -> float:
        """Timer resolution in seconds (MPI_Wtick)."""
        return time.get_clock_info("perf_counter").resolution

    Wtime = wtime
    Wtick = wtick

    # ------------------------------------------------------------------
    # shutdown

    @property
    def finalized(self) -> bool:
        return self._finalized

    def finalize(self) -> None:
        """Tear down the device; the environment becomes unusable.

        Audits the rank's buffer pool on the way out: every packed
        message should have completed its round trip back to the free
        list by Finalize, so leftovers indicate a leak (warned, not
        raised — mirroring how MPI implementations report unfreed
        resources at MPI_Finalize).
        """
        if not self._finalized:
            self._finalized = True
            # Snapshot metrics while the engine is still alive — the
            # registry itself survives finish(), the live gauges do not.
            try:
                metrics = self.device.metrics
                if metrics is not None:
                    self.final_metrics = metrics.snapshot()
            except Exception:  # noqa: BLE001 - device without metrics
                self.final_metrics = None
            self.device.finish()
            self.pool.check_leaks("MPI.Finalize")

    Finalize = finalize

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MPJEnvironment(rank={self._rank}, size={self.size}, "
            f"device={self.device.device_name}, "
            f"level={_LEVEL_NAMES[self._thread_level]})"
        )
