"""The MPI base level: rank-addressed point-to-point communication.

Follows the guides' mpi4py conventions for the Python-facing API:

* **Uppercase** methods (``Send``, ``Recv``, ``Isend`` ...) move numpy
  array data described by ``(buf, offset, count, datatype)`` — the
  mpijava 1.2 signatures the paper implements.  Datatype may be
  omitted and is then inferred from the array dtype.
* **Lowercase** methods (``send``, ``recv``, ``isend`` ...) move
  arbitrary pickled Python objects, mpi4py style.

Every message is packed into an mpjbuf :class:`~repro.buffer.Buffer`
(primitive data → static section; objects → dynamic section) and
handed to mpjdev; receives unpack arrived buffers into the user array
on the waiting thread.  Buffers come from the environment's pool and
return to it when requests finish.
"""

from __future__ import annotations

import os
from typing import Any, Optional

import numpy as np

from repro.buffer import Buffer
from repro.buffer.pool import BufferPool, DEFAULT_POOL
from repro.buffer.window import (
    ArrayRecvWindow,
    ArraySendWindow,
    SECTION_OVERHEAD,
)
from repro.mpi.attributes import AttributeMixin
from repro.mpi.datatype import (
    BasicType,
    Datatype,
    OBJECT,
    _IndexPatternType,
    datatype_for,
)
from repro.mpi.exceptions import (
    CommunicatorError,
    InvalidRankError,
    InvalidTagError,
    MPIException,
)
from repro.mpi.group import Group
from repro.mpi.request import MPIRequest
from repro.mpi.status import MPIStatus
from repro.mpjdev.comm import MPJDevComm, RankRequest
from repro.mpjdev.request import Status as DevStatus
from repro.xdev.constants import ANY_SOURCE, ANY_TAG

#: Extra bytes reserved beyond the packed payload (section headers).
_SLACK = 64

#: Reserved internal tag space for collectives (on the collective
#: context, so it can never collide with user point-to-point traffic).
TAG_BCAST = 1
TAG_REDUCE = 2
TAG_GATHER = 3
TAG_SCATTER = 4
TAG_ALLGATHER = 5
TAG_ALLTOALL = 6
TAG_BARRIER = 7
TAG_SCAN = 8
TAG_COMMCTL = 9
TAG_TOPO = 10
TAG_INTERCOMM = 11


class Comm(AttributeMixin):
    """Base communicator: identity, groups and point-to-point."""

    def __init__(
        self,
        devcomm: MPJDevComm,
        group: Group,
        contexts: tuple[int, int],
        pool: BufferPool | None = None,
        env: Any = None,
    ) -> None:
        self._devcomm = devcomm
        self._group = group
        self._context_pt2pt, self._context_coll = contexts
        self._pool = pool if pool is not None else DEFAULT_POOL
        self._env = env
        self._freed = False
        # Kill-switch for the zero-copy collective window path; the
        # benchmark's seed baseline uses it to measure the packed
        # (pre-window) datapath, and it doubles as an escape hatch.
        self._coll_windows = os.environ.get(
            "REPRO_COLL_WINDOWS", ""
        ).strip().lower() not in ("0", "off", "false")

    # ------------------------------------------------------------------
    # identity

    def rank(self) -> int:
        """This process's rank in the communicator."""
        return self._devcomm.rank

    def size(self) -> int:
        """Number of processes in the communicator."""
        return self._devcomm.size

    def group(self) -> Group:
        """The communicator's process group."""
        return self._group

    Rank = rank
    Size = size
    Group = group
    Get_rank = rank
    Get_size = size
    Get_group = group

    @property
    def contexts(self) -> tuple[int, int]:
        """(point-to-point, collective) context ids."""
        return (self._context_pt2pt, self._context_coll)

    def free(self) -> None:
        """Invalidate the communicator (MPI_Comm_free)."""
        self._freed = True

    def _check_live(self) -> None:
        if self._freed:
            raise CommunicatorError("communicator has been freed")

    # ------------------------------------------------------------------
    # validation

    def _check_rank(self, rank: int, *, wildcard: bool = False) -> None:
        if wildcard and rank == ANY_SOURCE:
            return
        if not (0 <= rank < self.size()):
            raise InvalidRankError(
                f"rank {rank} outside communicator of size {self.size()}"
            )

    @staticmethod
    def _check_tag(tag: int, *, wildcard: bool = False) -> None:
        if wildcard and tag == ANY_TAG:
            return
        if tag < 0:
            raise InvalidTagError(f"tag must be non-negative, got {tag}")

    # ------------------------------------------------------------------
    # observability (repro.obs)

    def _observe_collective(
        self, name: str, nbytes: int = 0, algorithm: Optional[str] = None
    ) -> None:
        """Count a collective entry in the device's metrics registry.

        When the chosen *algorithm* is known, a second counter labelled
        with it is bumped (``coll.bcast{algorithm=binomial}``) so traces
        and bench cells show which path actually ran.
        """
        try:
            metrics = self._devcomm.device.metrics
        except Exception:  # noqa: BLE001 - device without metrics
            return
        if metrics is None or not metrics.enabled:
            return
        metrics.counter(f"coll.{name}").inc()
        if algorithm is not None:
            metrics.counter(f"coll.{name}", labels={"algorithm": algorithm}).inc()
        if nbytes:
            metrics.histogram("coll.bytes").observe(nbytes)

    # ------------------------------------------------------------------
    # packing helpers

    def _pack(self, buf: Any, offset: int, count: int, datatype: Optional[Datatype]) -> tuple[Buffer, Datatype]:
        if datatype is None:
            if not isinstance(buf, np.ndarray):
                raise MPIException(
                    "datatype may be omitted only for numpy arrays"
                )
            datatype = datatype_for(buf)
        message = self._pool.acquire(datatype.packed_size(count) + _SLACK)
        try:
            datatype.pack(message, buf, offset, count)
        except BaseException:
            # A pack that rejects the user buffer (shape/dtype lie)
            # must not leak the pooled message.
            message.free()
            raise
        return message, datatype

    def _recv_finisher(
        self,
        message: Buffer,
        buf: Any,
        offset: int,
        count: int,
        datatype: Datatype,
    ):
        def finish(dev_status: DevStatus) -> MPIStatus:
            received = datatype.unpack(message, buf, offset, count)
            message.free()
            return MPIStatus(dev_status, count=received)

        return finish

    def _send_finisher(self, message: Buffer):
        def finish(dev_status: DevStatus) -> MPIStatus:
            message.free()
            return MPIStatus(dev_status)

        return finish

    def _request(self, inner: RankRequest, finisher, cleanup=None) -> MPIRequest:
        return MPIRequest(
            inner, finisher, device=self._devcomm.device, cleanup=cleanup
        )

    # ------------------------------------------------------------------
    # zero-copy array windows (collective datapath)

    def _window_route(
        self,
        buf: Any,
        offset: int,
        count: int,
        datatype: Optional[Datatype],
        *,
        writable: bool,
    ):
        """Gate for the zero-copy collective datapath.

        Returns ``(byte view, section type, base count, block count)``
        when the transfer can alias user memory directly, or None to
        use the packed path.  Windows are worth it only above the eager
        threshold (eager sends on retaining transports stage a copy
        anyway), and the gate must be *rank-consistent per message leg*:
        both ends see the same count/datatype/threshold, so sender and
        receiver agree on eligibility except for per-rank buffer quirks
        (non-contiguous array, dtype mismatch) — and a window on one
        side interoperates with a packed buffer on the other, so even
        then nothing breaks, one side just copies.
        """
        if not self._coll_windows:
            return None
        if count <= 0 or not isinstance(buf, np.ndarray):
            return None
        engine = getattr(self._devcomm.device, "engine", None)
        if engine is None:
            return None
        if datatype is None:
            datatype = datatype_for(buf)
        if datatype.base_dtype is None or datatype.extent != datatype.block_count:
            return None
        if isinstance(datatype, BasicType):
            basic = datatype
        elif isinstance(datatype, _IndexPatternType):
            # extent == block_count does not imply contiguity: an
            # Indexed pattern may permute elements within the extent.
            if not np.array_equal(
                datatype.pattern, np.arange(datatype.block_count, dtype=np.intp)
            ):
                return None
            basic = datatype.basic
        else:
            return None
        base_np = np.dtype(datatype.base_dtype)
        base_count = count * datatype.block_count
        if SECTION_OVERHEAD + base_count * base_np.itemsize <= engine.eager_threshold:
            return None
        if writable and not engine.transport.retains_segments:
            # A non-retaining transport would stage the landing through
            # scratch storage anyway; keep the packed path's pooling.
            return None
        if not buf.flags.c_contiguous:
            return None
        if writable and not buf.flags.writeable:
            return None
        flat = buf.reshape(-1)
        if flat.dtype != base_np and not (
            flat.dtype.kind in "iu"
            and base_np.kind in "iu"
            and flat.dtype.itemsize == base_np.itemsize
        ):
            return None
        if offset < 0 or offset + base_count > flat.size:
            return None  # let the packed path raise the precise error
        try:
            view = memoryview(flat[offset : offset + base_count]).cast("B")
        except (TypeError, ValueError, BufferError):
            return None
        return view, basic.section_type, base_count, datatype.block_count

    def _window_isend(
        self,
        buf: Any,
        offset: int,
        count: int,
        datatype: Optional[Datatype],
        dest: int,
        tag: int,
        *,
        context: int,
    ) -> Optional[MPIRequest]:
        """Zero-copy send of a large contiguous window, or None."""
        route = self._window_route(buf, offset, count, datatype, writable=False)
        if route is None:
            return None
        view, stype, base_count, _block = route
        window = ArraySendWindow(view, stype, base_count)
        inner = self._devcomm.isend(window, dest, tag, context)
        return self._request(inner, lambda dev_status: MPIStatus(dev_status))

    def _window_irecv(
        self,
        buf: Any,
        offset: int,
        count: int,
        datatype: Optional[Datatype],
        source: int,
        tag: int,
        *,
        context: int,
    ) -> Optional[MPIRequest]:
        """Zero-copy receive into a large contiguous window, or None."""
        route = self._window_route(buf, offset, count, datatype, writable=True)
        if route is None:
            return None
        view, stype, base_count, block = route
        window = ArrayRecvWindow(view, stype, base_count, block)
        inner = self._devcomm.irecv(window, source, tag, context)

        def finish(dev_status: DevStatus) -> MPIStatus:
            return MPIStatus(dev_status, count=window.landed_count // block)

        return self._request(inner, finish)

    # ------------------------------------------------------------------
    # uppercase point-to-point (array data, mpijava signatures)

    def Isend(
        self,
        buf: Any,
        offset: int,
        count: int,
        datatype: Optional[Datatype],
        dest: int,
        tag: int,
        *,
        context: Optional[int] = None,
        mode: str = "standard",
    ) -> MPIRequest:
        """Non-blocking standard-mode send."""
        self._check_live()
        self._check_rank(dest)
        self._check_tag(tag)
        message, datatype = self._pack(buf, offset, count, datatype)
        ctx = self._context_pt2pt if context is None else context
        try:
            inner = self._devcomm.isend(message, dest, tag, ctx, mode=mode)
        except BaseException:
            message.free()
            raise
        return self._request(
            inner, self._send_finisher(message), cleanup=message.free
        )

    def Send(
        self,
        buf: Any,
        offset: int,
        count: int,
        datatype: Optional[Datatype],
        dest: int,
        tag: int,
        *,
        context: Optional[int] = None,
    ) -> None:
        """Blocking standard-mode send."""
        self.Isend(buf, offset, count, datatype, dest, tag, context=context).wait()

    def Issend(
        self,
        buf: Any,
        offset: int,
        count: int,
        datatype: Optional[Datatype],
        dest: int,
        tag: int,
    ) -> MPIRequest:
        """Non-blocking synchronous-mode send."""
        return self.Isend(buf, offset, count, datatype, dest, tag, mode="sync")

    def Ssend(self, buf: Any, offset: int, count: int, datatype: Optional[Datatype], dest: int, tag: int) -> None:
        """Blocking synchronous-mode send."""
        self.Issend(buf, offset, count, datatype, dest, tag).wait()

    def Irsend(self, buf: Any, offset: int, count: int, datatype: Optional[Datatype], dest: int, tag: int) -> MPIRequest:
        """Non-blocking ready-mode send (receive must be pre-posted)."""
        return self.Isend(buf, offset, count, datatype, dest, tag, mode="ready")

    def Rsend(self, buf: Any, offset: int, count: int, datatype: Optional[Datatype], dest: int, tag: int) -> None:
        self.Irsend(buf, offset, count, datatype, dest, tag).wait()

    def Ibsend(self, buf: Any, offset: int, count: int, datatype: Optional[Datatype], dest: int, tag: int) -> MPIRequest:
        """Non-blocking buffered-mode send (data snapshotted on call)."""
        return self.Isend(buf, offset, count, datatype, dest, tag, mode="buffered")

    def Bsend(self, buf: Any, offset: int, count: int, datatype: Optional[Datatype], dest: int, tag: int) -> None:
        self.Ibsend(buf, offset, count, datatype, dest, tag).wait()

    def Irecv(
        self,
        buf: Any,
        offset: int,
        count: int,
        datatype: Optional[Datatype],
        source: int,
        tag: int,
        *,
        context: Optional[int] = None,
    ) -> MPIRequest:
        """Non-blocking receive; *source* may be ``ANY_SOURCE``."""
        self._check_live()
        self._check_rank(source, wildcard=True)
        self._check_tag(tag, wildcard=True)
        if datatype is None:
            if not isinstance(buf, np.ndarray):
                raise MPIException("datatype may be omitted only for numpy arrays")
            datatype = datatype_for(buf)
        ctx = self._context_pt2pt if context is None else context
        message = self._pool.acquire(datatype.packed_size(count) + _SLACK)
        try:
            inner = self._devcomm.irecv(message, source, tag, ctx)
        except BaseException:
            message.free()
            raise
        return self._request(
            inner,
            self._recv_finisher(message, buf, offset, count, datatype),
            cleanup=message.free,
        )

    def Recv(
        self,
        buf: Any,
        offset: int,
        count: int,
        datatype: Optional[Datatype],
        source: int,
        tag: int,
        *,
        context: Optional[int] = None,
    ) -> MPIStatus:
        """Blocking receive."""
        return self.Irecv(
            buf, offset, count, datatype, source, tag, context=context
        ).wait()

    def Sendrecv(
        self,
        sendbuf: Any,
        sendoffset: int,
        sendcount: int,
        sendtype: Optional[Datatype],
        dest: int,
        sendtag: int,
        recvbuf: Any,
        recvoffset: int,
        recvcount: int,
        recvtype: Optional[Datatype],
        source: int,
        recvtag: int,
    ) -> MPIStatus:
        """Combined send and receive (deadlock-free by construction)."""
        rreq = self.Irecv(recvbuf, recvoffset, recvcount, recvtype, source, recvtag)
        sreq = self.Isend(sendbuf, sendoffset, sendcount, sendtype, dest, sendtag)
        status = rreq.wait()
        sreq.wait()
        return status

    def Sendrecv_replace(
        self,
        buf: Any,
        offset: int,
        count: int,
        datatype: Optional[Datatype],
        dest: int,
        sendtag: int,
        source: int,
        recvtag: int,
    ) -> MPIStatus:
        """Sendrecv using one buffer (send data snapshotted first)."""
        if datatype is None:
            datatype = datatype_for(buf)
        # Buffered-mode send snapshots the data at call time, so the
        # subsequent in-place receive cannot corrupt it.
        sreq = self.Isend(buf, offset, count, datatype, dest, sendtag, mode="buffered")
        status = self.Recv(buf, offset, count, datatype, source, recvtag)
        sreq.wait()
        return status

    # ------------------------------------------------------------------
    # persistent requests (MPI-1 Send_init family)

    def Send_init(self, buf: Any, offset: int, count: int, datatype: Optional[Datatype], dest: int, tag: int):
        """Persistent standard-mode send (start with ``.start()``)."""
        from repro.mpi.persistent import Prequest

        self._check_rank(dest)
        self._check_tag(tag)
        return Prequest(self, "send", (buf, offset, count, datatype, dest, tag))

    def Ssend_init(self, buf: Any, offset: int, count: int, datatype: Optional[Datatype], dest: int, tag: int):
        """Persistent synchronous-mode send."""
        from repro.mpi.persistent import Prequest

        self._check_rank(dest)
        self._check_tag(tag)
        return Prequest(self, "send", (buf, offset, count, datatype, dest, tag), mode="sync")

    def Rsend_init(self, buf: Any, offset: int, count: int, datatype: Optional[Datatype], dest: int, tag: int):
        """Persistent ready-mode send."""
        from repro.mpi.persistent import Prequest

        self._check_rank(dest)
        self._check_tag(tag)
        return Prequest(self, "send", (buf, offset, count, datatype, dest, tag), mode="ready")

    def Bsend_init(self, buf: Any, offset: int, count: int, datatype: Optional[Datatype], dest: int, tag: int):
        """Persistent buffered-mode send (data snapshotted per start)."""
        from repro.mpi.persistent import Prequest

        self._check_rank(dest)
        self._check_tag(tag)
        return Prequest(self, "send", (buf, offset, count, datatype, dest, tag), mode="buffered")

    def Recv_init(self, buf: Any, offset: int, count: int, datatype: Optional[Datatype], source: int, tag: int):
        """Persistent receive."""
        from repro.mpi.persistent import Prequest

        self._check_rank(source, wildcard=True)
        self._check_tag(tag, wildcard=True)
        return Prequest(self, "recv", (buf, offset, count, datatype, source, tag))

    # ------------------------------------------------------------------
    # probing

    def Iprobe(self, source: int, tag: int) -> Optional[MPIStatus]:
        """Non-blocking probe on the point-to-point context."""
        self._check_live()
        self._check_rank(source, wildcard=True)
        self._check_tag(tag, wildcard=True)
        dev_status = self._devcomm.iprobe(source, tag, self._context_pt2pt)
        return MPIStatus(dev_status) if dev_status is not None else None

    def Probe(self, source: int, tag: int) -> MPIStatus:
        """Blocking probe."""
        self._check_live()
        self._check_rank(source, wildcard=True)
        self._check_tag(tag, wildcard=True)
        return MPIStatus(self._devcomm.probe(source, tag, self._context_pt2pt))

    # ------------------------------------------------------------------
    # lowercase point-to-point (pickled Python objects, mpi4py style)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> MPIRequest:
        """Non-blocking pickled-object send."""
        return self.Isend([obj], 0, 1, OBJECT, dest, tag)

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking pickled-object send."""
        self.isend(obj, dest, tag).wait()

    def ssend(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking synchronous pickled-object send."""
        self.Issend([obj], 0, 1, OBJECT, dest, tag).wait()

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> "ObjectRecvRequest":
        """Non-blocking object receive; ``wait()`` returns the object."""
        self._check_live()
        self._check_rank(source, wildcard=True)
        self._check_tag(tag, wildcard=True)
        box: list[Any] = [None]
        message = self._pool.acquire(_SLACK)
        try:
            inner = self._devcomm.irecv(message, source, tag, self._context_pt2pt)
        except BaseException:
            message.free()
            raise
        finisher = self._recv_finisher(message, box, 0, 1, OBJECT)
        return ObjectRecvRequest(
            inner,
            finisher,
            box,
            device=self._devcomm.device,
            cleanup=message.free,
        )

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG, status: Optional[list] = None) -> Any:
        """Blocking object receive; returns the object.

        If *status* is a list, the :class:`MPIStatus` is appended to it
        (Python has no out-parameters).
        """
        request = self.irecv(source, tag)
        obj = request.wait()
        if status is not None:
            status.append(request.status)
        return obj

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(rank={self.rank()}, size={self.size()})"


class ObjectRecvRequest(MPIRequest):
    """Request for a lowercase receive: ``wait()`` yields the object."""

    def __init__(
        self, inner: RankRequest, finisher, box: list, device=None, cleanup=None
    ) -> None:
        super().__init__(inner, finisher, device=device, cleanup=cleanup)
        self._box = box
        self.status: Optional[MPIStatus] = None

    def wait(self, timeout: Optional[float] = None) -> Any:
        self.status = super().wait(timeout=timeout)
        return self._box[0]

    def test(self) -> Optional[Any]:
        status = super().test()
        if status is None:
            return None
        self.status = status
        return self._box[0]

    Wait = wait
    Test = test
