"""MPI process groups.

A Group is an ordered set of processes (here: xdev ProcessIDs).  All
the MPI-1 group calculus is provided; Intracomm.create uses groups to
build new communicators, one of the "higher-level features of MPI"
the paper notes MPJ/Ibis lacks and MPJ Express implements.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.mpi.exceptions import InvalidRankError, MPIException
from repro.xdev.processid import ProcessID

#: Group/communicator comparison results (mpijava constants).
IDENT = 0
SIMILAR = 1
UNEQUAL = 2

#: "Not a member" marker returned by rank queries (MPI_UNDEFINED).
UNDEFINED = -3


class Group:
    """An immutable ordered set of processes."""

    def __init__(self, pids: Sequence[ProcessID], my_uid: Optional[int] = None) -> None:
        self._pids = tuple(pids)
        uids = [p.uid for p in self._pids]
        if len(set(uids)) != len(uids):
            raise MPIException("group contains duplicate processes")
        self._uid_to_rank = {uid: r for r, uid in enumerate(uids)}
        self._my_uid = my_uid

    # ------------------------------------------------------------------
    # queries

    @property
    def pids(self) -> tuple[ProcessID, ...]:
        return self._pids

    def size(self) -> int:
        return len(self._pids)

    Size = size

    def rank(self) -> int:
        """Calling process's rank in this group, or UNDEFINED."""
        if self._my_uid is None:
            return UNDEFINED
        return self._uid_to_rank.get(self._my_uid, UNDEFINED)

    Rank = rank

    def rank_of(self, pid: ProcessID) -> int:
        return self._uid_to_rank.get(pid.uid, UNDEFINED)

    def contains(self, pid: ProcessID) -> bool:
        return pid.uid in self._uid_to_rank

    def pid(self, rank: int) -> ProcessID:
        if not (0 <= rank < len(self._pids)):
            raise InvalidRankError(f"rank {rank} outside group of {len(self._pids)}")
        return self._pids[rank]

    def __len__(self) -> int:
        return len(self._pids)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Group) and self._pids == other._pids

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        return hash(tuple(p.uid for p in self._pids))

    # ------------------------------------------------------------------
    # set calculus

    def _derive(self, pids: Sequence[ProcessID]) -> "Group":
        return Group(pids, my_uid=self._my_uid)

    def union(self, other: "Group") -> "Group":
        """All of self, then other's processes not in self (MPI order)."""
        extra = [p for p in other._pids if p.uid not in self._uid_to_rank]
        return self._derive(list(self._pids) + extra)

    def intersection(self, other: "Group") -> "Group":
        """Processes of self also in other, in self's order."""
        return self._derive([p for p in self._pids if other.contains(p)])

    def difference(self, other: "Group") -> "Group":
        """Processes of self not in other, in self's order."""
        return self._derive([p for p in self._pids if not other.contains(p)])

    Union = union
    Intersection = intersection
    Difference = difference

    # ------------------------------------------------------------------
    # subsetting

    def incl(self, ranks: Sequence[int]) -> "Group":
        """New group of the listed ranks, in the listed order."""
        return self._derive([self.pid(r) for r in ranks])

    def excl(self, ranks: Sequence[int]) -> "Group":
        """New group without the listed ranks."""
        drop = set(ranks)
        for r in drop:
            if not (0 <= r < len(self._pids)):
                raise InvalidRankError(f"rank {r} outside group of {len(self._pids)}")
        return self._derive([p for r, p in enumerate(self._pids) if r not in drop])

    def range_incl(self, ranges: Sequence[tuple[int, int, int]]) -> "Group":
        """incl() over (first, last, stride) triplets (inclusive last)."""
        ranks: list[int] = []
        for first, last, stride in ranges:
            if stride == 0:
                raise MPIException("range stride must be nonzero")
            ranks.extend(range(first, last + (1 if stride > 0 else -1), stride))
        return self.incl(ranks)

    def range_excl(self, ranges: Sequence[tuple[int, int, int]]) -> "Group":
        """excl() over (first, last, stride) triplets (inclusive last)."""
        ranks: list[int] = []
        for first, last, stride in ranges:
            if stride == 0:
                raise MPIException("range stride must be nonzero")
            ranks.extend(range(first, last + (1 if stride > 0 else -1), stride))
        return self.excl(ranks)

    Incl = incl
    Excl = excl
    Range_incl = range_incl
    Range_excl = range_excl

    # ------------------------------------------------------------------
    # comparisons / translation

    def compare(self, other: "Group") -> int:
        """IDENT (same processes, same order), SIMILAR (same set), or
        UNEQUAL."""
        if self._pids == other._pids:
            return IDENT
        if {p.uid for p in self._pids} == {p.uid for p in other._pids}:
            return SIMILAR
        return UNEQUAL

    Compare = compare

    @staticmethod
    def translate_ranks(group1: "Group", ranks: Sequence[int], group2: "Group") -> list[int]:
        """Ranks in *group2* of *group1*'s processes (UNDEFINED if absent)."""
        return [group2.rank_of(group1.pid(r)) for r in ranks]

    Translate_ranks = translate_ranks

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Group(size={len(self._pids)}, rank={self.rank()})"
