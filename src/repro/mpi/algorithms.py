"""Alternative collective algorithms, selectable per communicator.

The high level of MPJ Express implements its collectives in pure Java
over point-to-point; production MPI libraries ship *several* algorithms
per collective and pick by message size and process count.  This module
provides the classic alternatives so the choice can be ablated
(``benchmarks/test_ablation_collectives.py``), tuned offline
(``python -m repro.bench tune-coll``) and selected automatically per
call (:mod:`repro.mpi.tuning`):

==============  ===========================  =================================
collective      default                      alternatives
==============  ===========================  =================================
Bcast           binomial tree                linear, scatter+ring-allgather,
                                             pipelined binomial
Reduce          binomial tree                linear gather-fold,
                                             pipelined binomial
Allreduce       Reduce + Bcast               recursive doubling, Rabenseifner
Allgather       ring                         gather + bcast
Allgatherv      gather + bcast via rank 0    ring
Gather          linear                       binomial tree
Scatter         linear                       binomial tree
Reduce_scatter  Reduce + Scatterv            pairwise exchange
==============  ===========================  =================================

Select manually with ``comm.set_collective_algorithm("bcast", "linear")``;
without an override the decision table in :mod:`repro.mpi.tuning` picks
by message size and communicator size.

All functions here speak the same internal interface as Intracomm's
built-ins: rank-addressed ``_coll_send``/``_coll_recv`` on the
communicator's collective context.  Each algorithm that needs special
structure (primitive contiguous datatypes, commutative or splittable
operations, a minimum element count) checks its preconditions up front
and falls back to the built-in default — the checks only consult
values that are identical on every rank (count, op flags, communicator
size, datatype shape), so all ranks take the same path.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.mpi.comm import (
    TAG_ALLGATHER,
    TAG_BCAST,
    TAG_GATHER,
    TAG_REDUCE,
    TAG_SCATTER,
)
from repro.mpi.datatype import _BY_DTYPE, Datatype
from repro.mpi.exceptions import MPIException

#: Pipeline segment size for the segmented tree algorithms, in bytes.
#: Chosen above the default eager threshold (128KB) so each segment
#: still travels the zero-copy rendezvous path.
SEGMENT_BYTES = 256 * 1024


def _primitive_contiguous(datatype: Datatype) -> bool:
    """True when elements are contiguous runs of a numpy base dtype."""
    return (
        datatype.base_dtype is not None
        and datatype.extent == datatype.block_count
    )


def _base_datatype(datatype: Datatype):
    """The BasicType matching *datatype*'s base dtype."""
    return _BY_DTYPE[np.dtype(datatype.base_dtype)]


def _binomial_tree(relrank: int, size: int) -> tuple[Optional[int], list[int]]:
    """Parent and children of *relrank* in the binomial tree rooted at 0.

    Children come in descending-subtree-size order, matching the send
    order of ``Intracomm._bcast_binomial``.
    """
    parent = None
    mask = 1
    while mask < size:
        if relrank & mask:
            parent = relrank - mask
            break
        mask <<= 1
    children = []
    m = mask >> 1
    while m > 0:
        if relrank + m < size:
            children.append(relrank + m)
        m >>= 1
    return parent, children


def _op_splits(op) -> bool:
    """Whether vector-splitting algorithms may partition operands."""
    return op.commute and getattr(op, "splits", True)


def _flat_or_none(buf, offset: int, n: int, datatype: Datatype):
    """A direct flat base-element view of *buf*, or None.

    None means the operand must be staged through pack/unpack: the
    datatype is derived with gaps, the buffer is not a C-contiguous
    ndarray (``reshape(-1)`` would silently copy), the dtype does not
    match the datatype's base, or the window is out of bounds.
    """
    if not _primitive_contiguous(datatype):
        return None
    if not isinstance(buf, np.ndarray) or not buf.flags.c_contiguous:
        return None
    base_np = np.dtype(datatype.base_dtype)
    flat = buf.reshape(-1)
    if flat.dtype != base_np and not (
        flat.dtype.kind in "iu"
        and base_np.kind in "iu"
        and flat.dtype.itemsize == base_np.itemsize
    ):
        return None
    if offset < 0 or offset + n > flat.size:
        return None
    return flat


def _load_vector(comm, buf, offset: int, count: int, datatype: Datatype, *, load: bool):
    """Present an operand as flat base elements: ``(arr, base0, staged)``.

    Returns a direct view when the buffer allows it (``staged`` False,
    ``base0`` = *offset*); otherwise a fresh staging array — packed
    from the user buffer when *load* — with ``base0`` 0.  Whether a
    rank stages is a local matter: both presentations send and receive
    identical wire traffic, so ranks never need to agree on it.
    """
    n = count * datatype.block_count
    flat = _flat_or_none(buf, offset, n, datatype)
    if flat is not None:
        return flat, offset, False
    from repro.mpi.intracomm import _local_copy

    stage = np.empty(n, dtype=datatype.base_dtype)
    if load and n:
        _local_copy(
            buf, offset, count, datatype,
            stage, 0, n, _base_datatype(datatype), comm._pool,
        )
    return stage, 0, True


def _store_vector(comm, arr, buf, offset: int, count: int, datatype: Datatype) -> None:
    """Unpack a staged result back into the user buffer."""
    from repro.mpi.intracomm import _local_copy

    n = count * datatype.block_count
    if n:
        _local_copy(
            arr, 0, n, _base_datatype(datatype),
            buf, offset, count, datatype, comm._pool,
        )


# ----------------------------------------------------------------------
# Bcast variants


def bcast_linear(comm, buf: Any, offset: int, count: int, datatype: Datatype, root: int) -> None:
    """Root sends to everyone: p-1 serial messages (the naive tree)."""
    rank, size = comm.rank(), comm.size()
    if rank == root:
        requests = [
            comm._coll_isend(buf, offset, count, datatype, r, TAG_BCAST)
            for r in range(size)
            if r != root
        ]
        for req in requests:
            req.wait()
    else:
        comm._coll_recv(buf, offset, count, datatype, root, TAG_BCAST)


def bcast_scatter_allgather(
    comm, buf: Any, offset: int, count: int, datatype: Datatype, root: int
) -> None:
    """Van de Geijn broadcast: scatter segments, then ring allgather.

    Bandwidth-optimal for large messages (each byte crosses each link
    ~2x instead of log2(p)x).  Requires a primitive-based contiguous
    datatype; falls back to the binomial tree otherwise or when the
    message is smaller than one element per rank.
    """
    rank, size = comm.rank(), comm.size()
    base_count = (
        count * datatype.block_count if datatype.base_dtype is not None else 0
    )
    if size == 1 or base_count < size:
        comm._bcast_binomial(buf, offset, count, datatype, root)
        return

    flat, base0, staged = _load_vector(
        comm, buf, offset, count, datatype, load=(rank == root)
    )

    # Segment bounds in base elements (first ranks take the remainder).
    per = base_count // size
    rem = base_count % size
    counts = [per + (1 if r < rem else 0) for r in range(size)]
    displs = [sum(counts[:r]) for r in range(size)]

    base_dt = _base_datatype(datatype)

    # Phase 1: binomial-scatter from root (relative ranks).
    relrank = (rank - root) % size

    def abs_rank(rel: int) -> int:
        return (rel + root) % size

    # Each relative rank r is responsible for segment r (by relrank).
    # Standard binomial scatter: at each step, a holder passes the
    # upper half of its span to a partner.
    span = 1
    while span < size:
        span *= 2
    my_span_start, my_span_len = 0, size  # root's initial span
    if relrank != 0:
        # Receive my span from the parent.
        mask = 1
        while mask < size:
            if relrank & mask:
                parent_rel = relrank - mask
                my_span_start = relrank
                my_span_len = min(mask, size - relrank)
                seg_lo = displs[my_span_start]
                seg_len = sum(counts[my_span_start : my_span_start + my_span_len])
                comm._coll_recv(
                    flat, base0 + seg_lo, seg_len, base_dt,
                    abs_rank(parent_rel), TAG_BCAST,
                )
                break
            mask <<= 1
        mask >>= 1
    else:
        mask = span // 2
    # Send halves of my span downward.
    while mask > 0:
        child_rel = relrank + mask
        if child_rel < my_span_start + my_span_len and child_rel < size:
            child_len = min(mask, my_span_start + my_span_len - child_rel)
            seg_lo = displs[child_rel]
            seg_len = sum(counts[child_rel : child_rel + child_len])
            if seg_len:
                comm._coll_send(
                    flat, base0 + seg_lo, seg_len, base_dt,
                    abs_rank(child_rel), TAG_BCAST,
                )
            my_span_len = child_rel - my_span_start
        mask >>= 1

    # Phase 2: ring allgather of the segments (by relative rank).
    right = abs_rank((relrank + 1) % size)
    left = abs_rank((relrank - 1) % size)
    for step in range(size - 1):
        send_seg = (relrank - step) % size
        recv_seg = (relrank - step - 1) % size
        rreq = comm._coll_irecv(
            flat, base0 + displs[recv_seg], counts[recv_seg], base_dt,
            left, TAG_ALLGATHER,
        )
        sreq = comm._coll_isend(
            flat, base0 + displs[send_seg], counts[send_seg], base_dt,
            right, TAG_ALLGATHER,
        )
        rreq.wait()
        sreq.wait()

    if staged and rank != root:
        _store_vector(comm, flat, buf, offset, count, datatype)


def bcast_binomial_pipelined(
    comm, buf: Any, offset: int, count: int, datatype: Datatype, root: int
) -> None:
    """Segmented binomial broadcast: overlap the tree levels.

    The message is cut into :data:`SEGMENT_BYTES` segments; an interior
    node forwards segment *k* to its children while segment *k+1* is
    still arriving from its parent, so deep trees stream instead of
    store-and-forwarding whole messages.  Falls back to the plain
    binomial tree for non-primitive datatypes or single-segment
    messages.
    """
    rank, size = comm.rank(), comm.size()
    if size == 1 or count == 0:
        return
    if datatype.base_dtype is None:
        comm._bcast_binomial(buf, offset, count, datatype, root)
        return
    n = count * datatype.block_count
    seg = max(1, SEGMENT_BYTES // np.dtype(datatype.base_dtype).itemsize)
    if n <= seg:
        comm._bcast_binomial(buf, offset, count, datatype, root)
        return
    base_dt = _base_datatype(datatype)
    flat, base0, staged = _load_vector(
        comm, buf, offset, count, datatype, load=(rank == root)
    )
    segs = [(base0 + a, min(seg, n - a)) for a in range(0, n, seg)]

    relrank = (rank - root) % size
    parent_rel, children_rel = _binomial_tree(relrank, size)
    children = [(c + root) % size for c in children_rel]

    sreqs = []
    if parent_rel is None:
        for a, ln in segs:
            for child in children:
                sreqs.append(comm._coll_isend(flat, a, ln, base_dt, child, TAG_BCAST))
    else:
        parent = (parent_rel + root) % size
        # Pre-post every segment receive: arrivals match in post order,
        # and the rendezvous handshakes overlap across segments.
        rreqs = [
            comm._coll_irecv(flat, a, ln, base_dt, parent, TAG_BCAST)
            for a, ln in segs
        ]
        for i, (a, ln) in enumerate(segs):
            rreqs[i].wait()
            for child in children:
                sreqs.append(comm._coll_isend(flat, a, ln, base_dt, child, TAG_BCAST))
    for req in sreqs:
        req.wait()
    if staged and rank != root:
        _store_vector(comm, flat, buf, offset, count, datatype)


# ----------------------------------------------------------------------
# Reduce variants


def reduce_linear(
    comm, sendbuf, sendoffset, recvbuf, recvoffset, count, datatype, op, root
) -> None:
    """Everyone sends to root; root folds in rank order.

    Correct for non-commutative operations; p-1 messages into one node.
    Root keeps a small window of receives in flight and recycles their
    staging buffers as each contribution is folded: the rendezvous
    handshakes overlap each other instead of serializing behind the
    folds, while memory stays bounded at the window size rather than
    growing with p.
    """
    rank, size = comm.rank(), comm.size()
    if rank != root:
        # Senders never fold, so they need no private accumulator:
        # ship a direct view of the user's buffer when the layout
        # allows (the zero-copy window path aliases it on the wire;
        # the blocking send completes before the call returns).
        flat = None
        if datatype.base_dtype is not None:
            n = count * datatype.block_count
            flat = _flat_or_none(sendbuf, sendoffset, n, datatype)
            # The root folds in the base dtype; a reinterpreting view
            # (same-width signed/unsigned aliasing) must not reach it.
            if flat is not None and flat.dtype != np.dtype(datatype.base_dtype):
                flat = None
        if flat is not None:
            comm._coll_send(flat, sendoffset, n, None, root, TAG_REDUCE)
        else:
            acc = comm._reduce_local(sendbuf, sendoffset, count, datatype)
            comm._coll_send(acc, 0, acc.size, None, root, TAG_REDUCE)
        return
    acc = comm._reduce_local(sendbuf, sendoffset, count, datatype)
    n = acc.size
    others = [r for r in range(size) if r != rank]
    window = min(4, len(others))
    pending: dict[int, tuple[Any, np.ndarray]] = {}
    for r in others[:window]:
        tmp = np.empty_like(acc)
        pending[r] = (comm._coll_irecv(tmp, 0, n, None, r, TAG_REDUCE), tmp)
    next_post = window
    result = None
    for r in range(size):
        if r == rank:
            part = acc
        else:
            req, tmp = pending.pop(r)
            req.wait()
            part = tmp
        if result is None:
            # acc is already this rank's private copy; a foreign first
            # part takes ownership of its staging buffer — both ways
            # the accumulator is private, so folds can land in place.
            result = part
            reusable = None
        else:
            result = op.reduce_into(result, part)
            # Recycle the folded-in staging buffer — unless a custom
            # op returned something aliasing it.
            reusable = (
                None
                if part is acc or np.shares_memory(result, part)
                else part
            )
        if r != rank and next_post < len(others):
            tmp = reusable if reusable is not None else np.empty_like(acc)
            nr = others[next_post]
            pending[nr] = (comm._coll_irecv(tmp, 0, n, None, nr, TAG_REDUCE), tmp)
            next_post += 1
    flat = comm._writable_flat(recvbuf)
    flat[recvoffset : recvoffset + n] = result


def reduce_binomial_pipelined(
    comm, sendbuf, sendoffset, recvbuf, recvoffset, count, datatype, op, root
) -> None:
    """Segmented binomial reduce: fold and forward segment by segment.

    Mirrors :func:`bcast_binomial_pipelined` with data flowing toward
    the root: each interior node folds its children's segment *k* into
    its accumulator and ships it to its parent while segment *k+1* is
    still in flight.  Needs a commutative, splittable op and a
    primitive contiguous datatype; falls back to the default otherwise.
    """
    rank, size = comm.rank(), comm.size()
    if (
        size == 1
        or not _op_splits(op)
        or not _primitive_contiguous(datatype)
    ):
        comm._reduce_default(
            sendbuf, sendoffset, recvbuf, recvoffset, count, datatype, op, root
        )
        return
    acc = comm._reduce_local(sendbuf, sendoffset, count, datatype)
    n = acc.size
    seg = max(1, SEGMENT_BYTES // acc.dtype.itemsize)
    if n <= seg:
        comm._reduce_default(
            sendbuf, sendoffset, recvbuf, recvoffset, count, datatype, op, root
        )
        return
    segs = [(a, min(seg, n - a)) for a in range(0, n, seg)]

    relrank = (rank - root) % size
    parent_rel, children_rel = _binomial_tree(relrank, size)
    parent = None if parent_rel is None else (parent_rel + root) % size
    children = [(c + root) % size for c in children_rel]

    tmps = {c: np.empty_like(acc) for c in children}
    rreqs = {
        c: [comm._coll_irecv(tmps[c], a, ln, None, c, TAG_REDUCE) for a, ln in segs]
        for c in children
    }
    sreqs = []
    for i, (a, ln) in enumerate(segs):
        for c in children:
            rreqs[c][i].wait()
            seg = acc[a : a + ln]
            out = op.reduce_into(seg, tmps[c][a : a + ln])
            if out is not seg:
                seg[:] = out
        if parent is not None:
            sreqs.append(comm._coll_isend(acc, a, ln, None, parent, TAG_REDUCE))
    for req in sreqs:
        req.wait()
    if parent is None:
        flat = comm._writable_flat(recvbuf)
        flat[recvoffset : recvoffset + n] = acc


# ----------------------------------------------------------------------
# Allreduce variants


def allreduce_recursive_doubling(
    comm, sendbuf, sendoffset, recvbuf, recvoffset, count, datatype, op
) -> None:
    """Recursive doubling: log2(p) exchange rounds, everyone finishes
    together.  Requires a commutative op (falls back otherwise)."""
    rank, size = comm.rank(), comm.size()
    if not op.commute:
        comm.Reduce(sendbuf, sendoffset, recvbuf, recvoffset, count, datatype, op, 0)
        comm.Bcast(recvbuf, recvoffset, count, datatype, 0)
        return
    acc = comm._reduce_local(sendbuf, sendoffset, count, datatype)
    n = acc.size
    tmp = np.empty_like(acc)

    # Fold the non-power-of-two remainder into the lower ranks.
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2
    if rank < 2 * rem:
        if rank % 2 == 0:
            comm._coll_send(acc, 0, n, None, rank + 1, TAG_REDUCE)
            newrank = -1
        else:
            comm._coll_recv(tmp, 0, n, None, rank - 1, TAG_REDUCE)
            acc = op.reduce_into(acc, tmp)
            newrank = rank // 2
    else:
        newrank = rank - rem

    if newrank != -1:
        mask = 1
        while mask < pof2:
            partner_new = newrank ^ mask
            partner = (
                partner_new * 2 + 1 if partner_new < rem else partner_new + rem
            )
            rreq = comm._coll_irecv(tmp, 0, n, None, partner, TAG_REDUCE)
            sreq = comm._coll_isend(acc, 0, n, None, partner, TAG_REDUCE)
            rreq.wait()
            sreq.wait()
            acc = op.reduce_into(acc, tmp)
            mask <<= 1

    # Unfold: deliver results back to the folded-away even ranks.
    if rank < 2 * rem:
        if rank % 2 == 1:
            comm._coll_send(acc, 0, n, None, rank - 1, TAG_REDUCE)
        else:
            comm._coll_recv(acc, 0, n, None, rank + 1, TAG_REDUCE)

    flat = comm._writable_flat(recvbuf)
    flat[recvoffset : recvoffset + n] = acc


def allreduce_rabenseifner(
    comm, sendbuf, sendoffset, recvbuf, recvoffset, count, datatype, op
) -> None:
    """Rabenseifner's allreduce: recursive-halving reduce-scatter, then
    recursive-doubling allgather.

    Bandwidth-optimal for large vectors: ~2·(p-1)/p·m bytes per rank
    instead of the 2·log2(p)·m of reduce+bcast trees.  Needs a
    commutative, splittable op and at least one base element per
    power-of-two rank; falls back to recursive doubling otherwise
    (which in turn handles the non-commutative case).
    """
    rank, size = comm.rank(), comm.size()
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    base_count = (
        count * datatype.block_count if datatype.base_dtype is not None else 0
    )
    if (
        size == 1
        or pof2 < 2
        or not _op_splits(op)
        or not _primitive_contiguous(datatype)
        or base_count < pof2
    ):
        allreduce_recursive_doubling(
            comm, sendbuf, sendoffset, recvbuf, recvoffset, count, datatype, op
        )
        return

    acc = comm._reduce_local(sendbuf, sendoffset, count, datatype)
    n = acc.size
    tmp = np.empty_like(acc)

    # Fold the non-power-of-two remainder into the lower ranks (whole
    # vector, same scheme as recursive doubling).
    rem = size - pof2
    if rank < 2 * rem:
        if rank % 2 == 0:
            comm._coll_send(acc, 0, n, None, rank + 1, TAG_REDUCE)
            newrank = -1
        else:
            comm._coll_recv(tmp, 0, n, None, rank - 1, TAG_REDUCE)
            acc = op.reduce_into(acc, tmp)
            newrank = rank // 2
    else:
        newrank = rank - rem

    if newrank != -1:

        def to_rank(vr: int) -> int:
            return vr * 2 + 1 if vr < rem else vr + rem

        # Block partition of the vector across the pof2 virtual ranks.
        per, extra = divmod(n, pof2)
        bounds = [0] * (pof2 + 1)
        for i in range(pof2):
            bounds[i + 1] = bounds[i] + per + (1 if i < extra else 0)

        # Phase 1: reduce-scatter by recursive vector halving.  Each
        # round exchanges half the current window with the partner and
        # folds the received half; after log2(pof2) rounds virtual rank
        # r owns the fully reduced block r.
        lo, hi = 0, pof2
        mask = pof2 // 2
        while mask:
            mid = (lo + hi) // 2
            if newrank & mask:
                keep_lo, keep_hi, send_lo, send_hi = mid, hi, lo, mid
            else:
                keep_lo, keep_hi, send_lo, send_hi = lo, mid, mid, hi
            partner = to_rank(newrank ^ mask)
            ka, kb = bounds[keep_lo], bounds[keep_hi]
            sa, sb = bounds[send_lo], bounds[send_hi]
            rreq = comm._coll_irecv(tmp, ka, kb - ka, None, partner, TAG_REDUCE)
            sreq = comm._coll_isend(acc, sa, sb - sa, None, partner, TAG_REDUCE)
            rreq.wait()
            sreq.wait()
            seg = acc[ka:kb]
            out = op.reduce_into(seg, tmp[ka:kb])
            if out is not seg:
                seg[:] = out
            lo, hi = keep_lo, keep_hi
            mask //= 2

        # Phase 2: allgather the blocks by recursive doubling over
        # growing windows (the exact mirror of phase 1).
        mask = 1
        while mask < pof2:
            partner = to_rank(newrank ^ mask)
            my_blo = (newrank // mask) * mask
            pa_blo = my_blo ^ mask
            ma, mb = bounds[my_blo], bounds[my_blo + mask]
            pa, pb = bounds[pa_blo], bounds[pa_blo + mask]
            rreq = comm._coll_irecv(acc, pa, pb - pa, None, partner, TAG_ALLGATHER)
            sreq = comm._coll_isend(acc, ma, mb - ma, None, partner, TAG_ALLGATHER)
            rreq.wait()
            sreq.wait()
            mask <<= 1

    # Unfold: deliver results back to the folded-away even ranks.
    if rank < 2 * rem:
        if rank % 2 == 1:
            comm._coll_send(acc, 0, n, None, rank - 1, TAG_REDUCE)
        else:
            comm._coll_recv(acc, 0, n, None, rank + 1, TAG_REDUCE)

    flat = comm._writable_flat(recvbuf)
    flat[recvoffset : recvoffset + n] = acc


# ----------------------------------------------------------------------
# Allgather / Allgatherv variants


def allgather_gather_bcast(
    comm, sendbuf, sendoffset, sendcount, sendtype,
    recvbuf, recvoffset, recvcount, recvtype,
) -> None:
    """Gather to rank 0, then broadcast the assembled array."""
    size = comm.size()
    comm.Gather(sendbuf, sendoffset, sendcount, sendtype,
                recvbuf, recvoffset, recvcount, recvtype, 0)
    comm.Bcast(recvbuf, recvoffset, size * recvcount, recvtype, 0)


def allgatherv_ring(
    comm, sendbuf, sendoffset, sendcount, sendtype,
    recvbuf, recvoffset, recvcounts, displs, recvtype,
) -> None:
    """Ring allgatherv: pass blocks around, no rank-0 bottleneck.

    p-1 steps; every byte crosses each link once, versus the default
    gatherv-to-0 + bcast which funnels the whole result through one
    rank twice.
    """
    from repro.mpi.intracomm import _local_copy

    rank, size = comm.rank(), comm.size()
    comm._check_vector_args(recvcounts, displs)
    _local_copy(
        sendbuf, sendoffset, sendcount, sendtype,
        recvbuf, recvoffset + displs[rank] * recvtype.extent,
        recvcounts[rank], recvtype, comm._pool,
    )
    if size == 1:
        return
    right = (rank + 1) % size
    left = (rank - 1) % size
    for step in range(size - 1):
        send_block = (rank - step) % size
        recv_block = (rank - step - 1) % size
        rreq = comm._coll_irecv(
            recvbuf, recvoffset + displs[recv_block] * recvtype.extent,
            recvcounts[recv_block], recvtype, left, TAG_ALLGATHER,
        )
        sreq = comm._coll_isend(
            recvbuf, recvoffset + displs[send_block] * recvtype.extent,
            recvcounts[send_block], recvtype, right, TAG_ALLGATHER,
        )
        rreq.wait()
        sreq.wait()


# ----------------------------------------------------------------------
# Gather / Scatter variants


def gather_binomial(
    comm, sendbuf, sendoffset, sendcount, sendtype,
    recvbuf, recvoffset, recvcount, recvtype, root,
) -> None:
    """Binomial-tree gather: log2(p) rounds instead of p-1 messages
    converging on the root.

    Interior nodes accumulate their subtree's blocks in a staging
    array and forward the whole span at once.  Falls back to the
    linear gather for non-primitive block types or empty blocks.
    """
    from repro.mpi.intracomm import _local_copy

    rank, size = comm.rank(), comm.size()
    own = recvtype if rank == root else sendtype
    own_count = recvcount if rank == root else sendcount
    blk = own_count * own.block_count  # base elements per rank block
    # Rank-consistent gate: blk and the base primitive are fixed by the
    # (matching) type signatures, unlike each rank's local layout.
    if size == 1 or blk == 0 or own.base_dtype is None:
        comm._gather_linear(
            sendbuf, sendoffset, sendcount, sendtype,
            recvbuf, recvoffset, recvcount, recvtype, root,
        )
        return
    base_np = np.dtype(own.base_dtype)
    base_dt = _BY_DTYPE[base_np]
    relrank = (rank - root) % size

    # Subtree span and tree links (same shape as the binomial scatter).
    if relrank == 0:
        limit = size
        span_len = size
        parent = None
    else:
        mask = 1
        while not (relrank & mask):
            mask <<= 1
        limit = mask
        span_len = min(mask, size - relrank)
        parent = ((relrank - mask) + root) % size
    children = []  # (child_rel, span length in blocks)
    m = 1
    while m < limit and relrank + m < size:
        children.append((relrank + m, min(m, size - relrank - m)))
        m <<= 1

    if parent is not None and span_len == 1:
        # Leaf: ship the block as-is; the parent lands it with base_dt.
        comm._coll_send(sendbuf, sendoffset, sendcount, sendtype, parent, TAG_GATHER)
        return

    if parent is None:
        # Root.  Land child spans straight into recvbuf when it can be
        # viewed as flat base elements in relrank order (root == 0).
        dst = None
        if (
            root == 0
            and _primitive_contiguous(recvtype)
            and isinstance(recvbuf, np.ndarray)
            and recvbuf.flags.c_contiguous
            and recvbuf.flags.writeable
        ):
            flat = recvbuf.reshape(-1)
            if flat.dtype == base_np or (
                flat.dtype.kind in "iu"
                and base_np.kind in "iu"
                and flat.dtype.itemsize == base_np.itemsize
            ):
                dst = flat
        if dst is not None:
            rreqs = [
                comm._coll_irecv(
                    dst, recvoffset + c * blk, ln * blk, base_dt,
                    (c + root) % size, TAG_GATHER,
                )
                for c, ln in children
            ]
            _local_copy(
                sendbuf, sendoffset, sendcount, sendtype,
                recvbuf, recvoffset, recvcount, recvtype, comm._pool,
            )
            for req in rreqs:
                req.wait()
        else:
            staged = np.empty(size * blk, dtype=base_np)
            rreqs = [
                comm._coll_irecv(
                    staged, c * blk, ln * blk, base_dt,
                    (c + root) % size, TAG_GATHER,
                )
                for c, ln in children
            ]
            for req in rreqs:
                req.wait()
            for rel in range(1, size):
                r_abs = (rel + root) % size
                _local_copy(
                    staged, rel * blk, blk, base_dt,
                    recvbuf, recvoffset + r_abs * recvcount * recvtype.extent,
                    recvcount, recvtype, comm._pool,
                )
            _local_copy(
                sendbuf, sendoffset, sendcount, sendtype,
                recvbuf, recvoffset + root * recvcount * recvtype.extent,
                recvcount, recvtype, comm._pool,
            )
        return

    # Interior node: stage the subtree span, then forward it upward.
    staged = np.empty(span_len * blk, dtype=base_np)
    rreqs = [
        comm._coll_irecv(
            staged, (c - relrank) * blk, ln * blk, base_dt,
            (c + root) % size, TAG_GATHER,
        )
        for c, ln in children
    ]
    _local_copy(
        sendbuf, sendoffset, sendcount, sendtype, staged, 0, blk, base_dt, comm._pool
    )
    for req in rreqs:
        req.wait()
    comm._coll_send(staged, 0, span_len * blk, base_dt, parent, TAG_GATHER)


def scatter_binomial(
    comm, sendbuf, sendoffset, sendcount, sendtype,
    recvbuf, recvoffset, recvcount, recvtype, root,
) -> None:
    """Binomial-tree scatter: the mirror image of :func:`gather_binomial`.

    The root ships half its blocks to the farthest subtree root, which
    recursively distributes them — log2(p) rounds versus p-1 serial
    sends.  Falls back to the linear scatter for non-primitive block
    types or empty blocks.
    """
    from repro.mpi.intracomm import _local_copy

    rank, size = comm.rank(), comm.size()
    own = sendtype if rank == root else recvtype
    own_count = sendcount if rank == root else recvcount
    blk = own_count * own.block_count
    # Rank-consistent gate (see gather_binomial).
    if size == 1 or blk == 0 or own.base_dtype is None:
        comm._scatter_linear(
            sendbuf, sendoffset, sendcount, sendtype,
            recvbuf, recvoffset, recvcount, recvtype, root,
        )
        return
    base_np = np.dtype(own.base_dtype)
    base_dt = _BY_DTYPE[base_np]
    relrank = (rank - root) % size

    if relrank == 0:
        # Root: view (or stage) the blocks as flat base elements in
        # relrank order, then peel off subtree spans.
        src = None
        base0 = 0
        if (
            root == 0
            and _primitive_contiguous(sendtype)
            and isinstance(sendbuf, np.ndarray)
            and sendbuf.flags.c_contiguous
        ):
            flat = sendbuf.reshape(-1)
            if flat.dtype == base_np or (
                flat.dtype.kind in "iu"
                and base_np.kind in "iu"
                and flat.dtype.itemsize == base_np.itemsize
            ):
                src = flat
                base0 = sendoffset
        if src is None:
            src = np.empty(size * blk, dtype=base_np)
            for rel in range(1, size):
                r_abs = (rel + root) % size
                _local_copy(
                    sendbuf, sendoffset + r_abs * sendcount * sendtype.extent,
                    sendcount, sendtype, src, rel * blk, blk, base_dt, comm._pool,
                )
        span = 1
        while span < size:
            span *= 2
        span_len = size
        sreqs = []
        mask = span // 2
        while mask > 0:
            if mask < span_len:
                child_len = min(mask, size - mask)
                sreqs.append(comm._coll_isend(
                    src, base0 + mask * blk, child_len * blk, base_dt,
                    (mask + root) % size, TAG_SCATTER,
                ))
                span_len = mask
            mask >>= 1
        _local_copy(
            sendbuf, sendoffset + root * sendcount * sendtype.extent,
            sendcount, sendtype, recvbuf, recvoffset, recvcount, recvtype,
            comm._pool,
        )
        for req in sreqs:
            req.wait()
        return

    mask = 1
    while not (relrank & mask):
        mask <<= 1
    parent = ((relrank - mask) + root) % size
    span_len = min(mask, size - relrank)
    if span_len == 1:
        # Leaf: the span is exactly my block; land it as recvtype.
        comm._coll_recv(recvbuf, recvoffset, recvcount, recvtype, parent, TAG_SCATTER)
        return
    staged = np.empty(span_len * blk, dtype=base_np)
    comm._coll_recv(staged, 0, span_len * blk, base_dt, parent, TAG_SCATTER)
    sreqs = []
    m = mask >> 1
    while m > 0:
        if m < span_len:
            child_len = min(m, span_len - m)
            sreqs.append(comm._coll_isend(
                staged, m * blk, child_len * blk, base_dt,
                (relrank + m + root) % size, TAG_SCATTER,
            ))
            span_len = m
        m >>= 1
    _local_copy(staged, 0, blk, base_dt, recvbuf, recvoffset, recvcount, recvtype, comm._pool)
    for req in sreqs:
        req.wait()


# ----------------------------------------------------------------------
# Reduce_scatter variants


def reduce_scatter_pairwise(
    comm, sendbuf, sendoffset, recvbuf, recvoffset, recvcounts, datatype, op
) -> None:
    """Pairwise-exchange reduce-scatter.

    p-1 rounds; in round *i* each rank sends block ``rank+i`` straight
    from its send buffer to its owner and folds the matching
    contribution it receives, so only its own block ever crosses the
    wire toward it — no rank-0 funnel and no full-vector temporary.
    Needs a commutative, splittable op and a primitive contiguous
    datatype; falls back to the default reduce+scatterv otherwise.
    """
    rank, size = comm.rank(), comm.size()
    comm._check_vector_args(recvcounts, None)
    if size == 1 or not _op_splits(op) or not _primitive_contiguous(datatype):
        comm._reduce_scatter_default(
            sendbuf, sendoffset, recvbuf, recvoffset, recvcounts, datatype, op
        )
        return
    blkc = datatype.block_count
    counts_b = [int(c) * blkc for c in recvcounts]
    displs_b = [0] * size
    for i in range(1, size):
        displs_b[i] = displs_b[i - 1] + counts_b[i - 1]

    flat = np.asarray(sendbuf).reshape(-1)
    my_n = counts_b[rank]
    acc = flat[
        sendoffset + displs_b[rank] : sendoffset + displs_b[rank] + my_n
    ].copy()
    tmp = np.empty_like(acc)
    base_dt = _base_datatype(datatype)
    for i in range(1, size):
        dst = (rank + i) % size
        src = (rank - i) % size
        rreq = comm._coll_irecv(tmp, 0, my_n, None, src, TAG_REDUCE)
        sreq = comm._coll_isend(
            flat, sendoffset + displs_b[dst], counts_b[dst], base_dt,
            dst, TAG_REDUCE,
        )
        rreq.wait()
        sreq.wait()
        if my_n:
            acc = op.reduce_into(acc, tmp)
    if my_n:
        out = comm._writable_flat(recvbuf)
        out[recvoffset : recvoffset + my_n] = acc


#: Registry: collective name -> {algorithm name -> callable}.
#: ``None`` marks the built-in default implementation in Intracomm.
REGISTRY: dict[str, dict[str, Any]] = {
    "bcast": {
        "binomial": None,  # built-in default
        "linear": bcast_linear,
        "scatter_allgather": bcast_scatter_allgather,
        "binomial_pipelined": bcast_binomial_pipelined,
    },
    "reduce": {
        "binomial": None,
        "linear": reduce_linear,
        "binomial_pipelined": reduce_binomial_pipelined,
    },
    "allreduce": {
        "reduce_bcast": None,
        "recursive_doubling": allreduce_recursive_doubling,
        "rabenseifner": allreduce_rabenseifner,
    },
    "allgather": {
        "ring": None,
        "gather_bcast": allgather_gather_bcast,
    },
    "allgatherv": {
        "gather_bcast": None,
        "ring": allgatherv_ring,
    },
    "gather": {
        "linear": None,
        "binomial": gather_binomial,
    },
    "scatter": {
        "linear": None,
        "binomial": scatter_binomial,
    },
    "reduce_scatter": {
        "reduce_scatterv": None,
        "pairwise": reduce_scatter_pairwise,
    },
}

#: The built-in default algorithm name per collective (the REGISTRY
#: entry mapped to None).
DEFAULTS: dict[str, str] = {
    "bcast": "binomial",
    "reduce": "binomial",
    "allreduce": "reduce_bcast",
    "allgather": "ring",
    "allgatherv": "gather_bcast",
    "gather": "linear",
    "scatter": "linear",
    "reduce_scatter": "reduce_scatterv",
}


def validate(collective: str, algorithm: str) -> None:
    if collective not in REGISTRY:
        raise MPIException(
            f"no algorithm choices for collective {collective!r}; "
            f"tunable: {sorted(REGISTRY)}"
        )
    if algorithm not in REGISTRY[collective]:
        raise MPIException(
            f"unknown {collective} algorithm {algorithm!r}; "
            f"known: {sorted(REGISTRY[collective])}"
        )
