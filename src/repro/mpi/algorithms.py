"""Alternative collective algorithms, selectable per communicator.

The high level of MPJ Express implements its collectives in pure Java
over point-to-point; production MPI libraries ship *several* algorithms
per collective and pick by message size and process count.  This module
provides the classic alternatives so the choice can be ablated
(``benchmarks/test_ablation_collectives.py``) and tuned:

=============  ===========================  ============================
collective     default                      alternatives
=============  ===========================  ============================
Bcast          binomial tree                linear, scatter+ring-allgather
Reduce         binomial tree                linear gather-fold
Allreduce      Reduce + Bcast               recursive doubling
Allgather      ring                         gather + bcast
=============  ===========================  ============================

Select with ``comm.set_collective_algorithm("bcast", "linear")``.

All functions here speak the same internal interface as Intracomm's
built-ins: rank-addressed ``_coll_send``/``_coll_recv`` on the
communicator's collective context.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.mpi import op as ops
from repro.mpi.comm import TAG_ALLGATHER, TAG_BCAST, TAG_REDUCE
from repro.mpi.datatype import Datatype
from repro.mpi.exceptions import MPIException

# ----------------------------------------------------------------------
# Bcast variants


def bcast_linear(comm, buf: Any, offset: int, count: int, datatype: Datatype, root: int) -> None:
    """Root sends to everyone: p-1 serial messages (the naive tree)."""
    rank, size = comm.rank(), comm.size()
    if rank == root:
        requests = [
            comm._coll_isend(buf, offset, count, datatype, r, TAG_BCAST)
            for r in range(size)
            if r != root
        ]
        for req in requests:
            req.wait()
    else:
        comm._coll_recv(buf, offset, count, datatype, root, TAG_BCAST)


def bcast_scatter_allgather(
    comm, buf: Any, offset: int, count: int, datatype: Datatype, root: int
) -> None:
    """Van de Geijn broadcast: scatter segments, then ring allgather.

    Bandwidth-optimal for large messages (each byte crosses each link
    ~2x instead of log2(p)x).  Requires a primitive-based contiguous
    datatype; falls back to the binomial tree otherwise or when the
    message is smaller than one element per rank.
    """
    rank, size = comm.rank(), comm.size()
    if (
        size == 1
        or datatype.base_dtype is None
        or datatype.extent != datatype.block_count
        or count < size
    ):
        comm._bcast_binomial(buf, offset, count, datatype, root)
        return

    base_count = count * datatype.block_count  # in base elements
    flat = np.asarray(buf).reshape(-1)
    base_offset = offset * datatype.extent

    # Segment bounds in base elements (first ranks take the remainder).
    per = base_count // size
    rem = base_count % size
    counts = [per + (1 if r < rem else 0) for r in range(size)]
    displs = [sum(counts[:r]) for r in range(size)]

    from repro.mpi.datatype import _BY_DTYPE  # base datatype for dtype

    base_dt = _BY_DTYPE[np.dtype(datatype.base_dtype)]

    # Phase 1: binomial-scatter from root (relative ranks).
    relrank = (rank - root) % size

    def abs_rank(rel: int) -> int:
        return (rel + root) % size

    # Each relative rank r is responsible for segment r (by relrank).
    # Standard binomial scatter: at each step, a holder passes the
    # upper half of its span to a partner.
    span = 1
    while span < size:
        span *= 2
    my_span_start, my_span_len = 0, size  # root's initial span
    if relrank != 0:
        # Receive my span from the parent.
        mask = 1
        while mask < size:
            if relrank & mask:
                parent_rel = relrank - mask
                my_span_start = relrank
                my_span_len = min(mask, size - relrank)
                seg_lo = displs[my_span_start]
                seg_len = sum(counts[my_span_start : my_span_start + my_span_len])
                comm._coll_recv(
                    flat, base_offset + seg_lo, seg_len, base_dt,
                    abs_rank(parent_rel), TAG_BCAST,
                )
                break
            mask <<= 1
        mask >>= 1
    else:
        mask = span // 2
    # Send halves of my span downward.
    while mask > 0:
        child_rel = relrank + mask
        if child_rel < my_span_start + my_span_len and child_rel < size:
            child_len = min(mask, my_span_start + my_span_len - child_rel)
            seg_lo = displs[child_rel]
            seg_len = sum(counts[child_rel : child_rel + child_len])
            if seg_len:
                comm._coll_send(
                    flat, base_offset + seg_lo, seg_len, base_dt,
                    abs_rank(child_rel), TAG_BCAST,
                )
            my_span_len = child_rel - my_span_start
        mask >>= 1

    # Phase 2: ring allgather of the segments (by relative rank).
    right = abs_rank((relrank + 1) % size)
    left = abs_rank((relrank - 1) % size)
    for step in range(size - 1):
        send_seg = (relrank - step) % size
        recv_seg = (relrank - step - 1) % size
        rreq = comm._coll_irecv(
            flat, base_offset + displs[recv_seg], counts[recv_seg], base_dt,
            left, TAG_ALLGATHER,
        )
        sreq = comm._coll_isend(
            flat, base_offset + displs[send_seg], counts[send_seg], base_dt,
            right, TAG_ALLGATHER,
        )
        rreq.wait()
        sreq.wait()


# ----------------------------------------------------------------------
# Reduce variants


def reduce_linear(
    comm, sendbuf, sendoffset, recvbuf, recvoffset, count, datatype, op, root
) -> None:
    """Everyone sends to root; root folds in rank order.

    Correct for non-commutative operations; p-1 messages into one node.
    """
    rank, size = comm.rank(), comm.size()
    acc = comm._reduce_local(sendbuf, sendoffset, count, datatype)
    n = acc.size
    if rank != root:
        comm._coll_send(acc, 0, n, None, root, TAG_REDUCE)
        return
    parts = []
    for r in range(size):
        if r == rank:
            parts.append(acc)
        else:
            tmp = np.empty_like(acc)
            comm._coll_recv(tmp, 0, n, None, r, TAG_REDUCE)
            parts.append(tmp.copy())
    result = parts[0]
    for part in parts[1:]:
        result = op.reduce_arrays(result, part)
    flat = comm._writable_flat(recvbuf)
    flat[recvoffset : recvoffset + n] = result


# ----------------------------------------------------------------------
# Allreduce variants


def allreduce_recursive_doubling(
    comm, sendbuf, sendoffset, recvbuf, recvoffset, count, datatype, op
) -> None:
    """Recursive doubling: log2(p) exchange rounds, everyone finishes
    together.  Requires a commutative op (falls back otherwise)."""
    rank, size = comm.rank(), comm.size()
    if not op.commute:
        comm.Reduce(sendbuf, sendoffset, recvbuf, recvoffset, count, datatype, op, 0)
        comm.Bcast(recvbuf, recvoffset, count, datatype, 0)
        return
    acc = comm._reduce_local(sendbuf, sendoffset, count, datatype)
    n = acc.size
    tmp = np.empty_like(acc)

    # Fold the non-power-of-two remainder into the lower ranks.
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2
    if rank < 2 * rem:
        if rank % 2 == 0:
            comm._coll_send(acc, 0, n, None, rank + 1, TAG_REDUCE)
            newrank = -1
        else:
            comm._coll_recv(tmp, 0, n, None, rank - 1, TAG_REDUCE)
            acc = op.reduce_arrays(acc, tmp)
            newrank = rank // 2
    else:
        newrank = rank - rem

    if newrank != -1:
        mask = 1
        while mask < pof2:
            partner_new = newrank ^ mask
            partner = (
                partner_new * 2 + 1 if partner_new < rem else partner_new + rem
            )
            rreq = comm._coll_irecv(tmp, 0, n, None, partner, TAG_REDUCE)
            sreq = comm._coll_isend(acc, 0, n, None, partner, TAG_REDUCE)
            rreq.wait()
            sreq.wait()
            acc = op.reduce_arrays(acc, tmp)
            mask <<= 1

    # Unfold: deliver results back to the folded-away even ranks.
    if rank < 2 * rem:
        if rank % 2 == 1:
            comm._coll_send(acc, 0, n, None, rank - 1, TAG_REDUCE)
        else:
            comm._coll_recv(acc, 0, n, None, rank + 1, TAG_REDUCE)

    flat = comm._writable_flat(recvbuf)
    flat[recvoffset : recvoffset + n] = acc


# ----------------------------------------------------------------------
# Allgather variants


def allgather_gather_bcast(
    comm, sendbuf, sendoffset, sendcount, sendtype,
    recvbuf, recvoffset, recvcount, recvtype,
) -> None:
    """Gather to rank 0, then broadcast the assembled array."""
    size = comm.size()
    comm.Gather(sendbuf, sendoffset, sendcount, sendtype,
                recvbuf, recvoffset, recvcount, recvtype, 0)
    comm.Bcast(recvbuf, recvoffset, size * recvcount, recvtype, 0)


#: Registry: collective name -> {algorithm name -> callable}.
REGISTRY: dict[str, dict[str, Any]] = {
    "bcast": {
        "binomial": None,  # built-in default
        "linear": bcast_linear,
        "scatter_allgather": bcast_scatter_allgather,
    },
    "reduce": {
        "binomial": None,
        "linear": reduce_linear,
    },
    "allreduce": {
        "reduce_bcast": None,
        "recursive_doubling": allreduce_recursive_doubling,
    },
    "allgather": {
        "ring": None,
        "gather_bcast": allgather_gather_bcast,
    },
}


def validate(collective: str, algorithm: str) -> None:
    if collective not in REGISTRY:
        raise MPIException(
            f"no algorithm choices for collective {collective!r}; "
            f"tunable: {sorted(REGISTRY)}"
        )
    if algorithm not in REGISTRY[collective]:
        raise MPIException(
            f"unknown {collective} algorithm {algorithm!r}; "
            f"known: {sorted(REGISTRY[collective])}"
        )
