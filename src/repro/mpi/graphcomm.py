"""Graph virtual topology (MPI ``Graph_create`` family)."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.mpi.exceptions import TopologyError
from repro.mpi.intracomm import Intracomm


class GraphComm(Intracomm):
    """Intracommunicator with an attached neighbourhood graph.

    *index* and *edges* use the MPI-1 compressed adjacency format:
    ``index[i]`` is the cumulative neighbour count through node ``i``
    and ``edges`` concatenates every node's neighbour list.
    """

    def __init__(self, *args, index: Sequence[int], edges: Sequence[int], **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._index = tuple(int(i) for i in index)
        self._edges = tuple(int(e) for e in edges)

    @classmethod
    def _construct(
        cls,
        parent: Intracomm,
        contexts: tuple[int, int],
        index: Sequence[int],
        edges: Sequence[int],
        reorder: bool,
    ) -> Optional["GraphComm"]:
        nnodes = len(index)
        if nnodes == 0:
            raise TopologyError("graph topology needs at least one node")
        if nnodes > parent.size():
            raise TopologyError(
                f"graph of {nnodes} nodes does not fit communicator of {parent.size()}"
            )
        prev = 0
        for i, cum in enumerate(index):
            if cum < prev:
                raise TopologyError(f"index must be non-decreasing (node {i})")
            prev = cum
        if index[-1] != len(edges):
            raise TopologyError(
                f"index promises {index[-1]} edges, edges has {len(edges)}"
            )
        for e in edges:
            if not (0 <= e < nnodes):
                raise TopologyError(f"edge target {e} outside graph of {nnodes}")
        rank = parent.rank()
        if rank >= nnodes:
            return None
        ranks = list(range(nnodes))
        group = parent.group().incl(ranks)
        return cls(
            parent._devcomm.sub_comm(ranks, rank),
            group,
            contexts,
            pool=parent._pool,
            env=parent._env,
            context_counter=parent._context_counter,
            index=index,
            edges=edges,
        )

    # ------------------------------------------------------------------
    # queries

    def get_topo(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """(index, edges) — MPI_Graph_get."""
        return self._index, self._edges

    def neighbours_count(self, rank: int) -> int:
        if not (0 <= rank < len(self._index)):
            raise TopologyError(f"rank {rank} outside graph of {len(self._index)}")
        start = self._index[rank - 1] if rank > 0 else 0
        return self._index[rank] - start

    def neighbours(self, rank: int) -> tuple[int, ...]:
        if not (0 <= rank < len(self._index)):
            raise TopologyError(f"rank {rank} outside graph of {len(self._index)}")
        start = self._index[rank - 1] if rank > 0 else 0
        return self._edges[start : self._index[rank]]

    Get_topo = get_topo
    Get_neighbors = neighbours
    Get_neighbors_count = neighbours_count
    neighbors = neighbours
    neighbors_count = neighbours_count
