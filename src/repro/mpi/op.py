"""Reduction operations (MPI ``Op``).

All predefined operations are vectorized over numpy arrays.  MAXLOC /
MINLOC follow the MPI convention of operating on (value, index) pairs;
here a pair sequence is a 2-column array or a list of 2-tuples.

User-defined operations are supported via :class:`Op` with any callable
``f(a, b) -> c`` applied elementwise (numpy ufuncs are used directly;
plain Python callables are applied through ``np.frompyfunc``).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.mpi.exceptions import DatatypeError


class Op:
    """A reduction operator.

    ``func(accumulator, operand)`` must return the elementwise
    reduction; *commute* declares commutativity (collectives may
    re-associate commutative operations).  *splits* declares that the
    operation is elementwise over base elements, so vector-splitting
    algorithms (Rabenseifner allreduce, pairwise reduce-scatter) may
    partition the operand at arbitrary element boundaries; MAXLOC and
    MINLOC set it False because their flat layout pairs up adjacent
    elements.
    """

    def __init__(
        self,
        func: Callable[[Any, Any], Any],
        commute: bool = True,
        name: str = "user",
        splits: bool = True,
    ) -> None:
        self._func = func
        self.commute = commute
        self.name = name
        self.splits = splits

    def __call__(self, a: Any, b: Any) -> Any:
        """Reduce *a* with *b* (a OP b), preserving array dtype."""
        return self._func(a, b)

    def reduce_arrays(self, acc: np.ndarray, operand: np.ndarray) -> np.ndarray:
        """Elementwise in-place-style reduction for numpy arrays."""
        result = self._func(acc, operand)
        return np.asarray(result, dtype=acc.dtype) if hasattr(acc, "dtype") else result

    def reduce_into(self, acc: np.ndarray, operand: np.ndarray) -> np.ndarray:
        """Fold *operand* into *acc*, in place when safely possible.

        Predefined operations wrap binary ufuncs, so the fold can land
        directly in the accumulator — no per-fold allocation, which is
        what dominates large-message reduction cost.  Anything else
        (wrapped callables, pair-structured ops, dtype-changing
        results) falls back to :meth:`reduce_arrays` and returns a new
        array; callers must use the return value either way.
        """
        if (
            isinstance(self._func, np.ufunc)
            and self._func.nin == 2
            and self._func.nout == 1
            and isinstance(acc, np.ndarray)
            and acc.flags.writeable
        ):
            try:
                self._func(acc, operand, out=acc)
                return acc
            except (TypeError, ValueError):
                pass
        return self.reduce_arrays(acc, operand)

    def __repr__(self) -> str:
        return f"Op({self.name})"


def _logical(fn: Callable[[Any, Any], Any], name: str) -> Op:
    def wrapped(a, b):
        out = fn(np.asarray(a, dtype=bool), np.asarray(b, dtype=bool))
        # Logical results come back in the operand dtype (MPI semantics
        # keep the buffer type).
        return out.astype(np.asarray(a).dtype) if isinstance(a, np.ndarray) else out

    return Op(wrapped, name=name)


def _pairwise(select: Callable[[Any, Any], Any], name: str) -> Op:
    """MAXLOC/MINLOC: pick (value, index); ties resolved to lower index.

    Operands are (value, index) pairs: either an (n, 2) array or a flat
    array of even length laid out ``v0 i0 v1 i1 ...`` (the layout a
    reduction over count=2n basic elements naturally produces).  The
    result has the same shape as the first operand.
    """

    def wrapped(a, b):
        a_in = np.asarray(a)
        b_in = np.asarray(b)
        flat_layout = a_in.ndim == 1
        if flat_layout:
            if a_in.size % 2:
                raise DatatypeError(
                    f"{name} needs (value, index) pairs; flat operand of "
                    f"odd length {a_in.size}"
                )
            a_arr = a_in.reshape(-1, 2)
            b_arr = b_in.reshape(-1, 2)
        else:
            a_arr, b_arr = a_in, b_in
        if a_arr.ndim != 2 or a_arr.shape[1] != 2:
            raise DatatypeError(f"{name} needs (value, index) pairs, got {a_in.shape}")
        out = a_arr.copy()
        if name == "MAXLOC":
            take_b = (b_arr[:, 0] > a_arr[:, 0]) | (
                (b_arr[:, 0] == a_arr[:, 0]) & (b_arr[:, 1] < a_arr[:, 1])
            )
        else:
            take_b = (b_arr[:, 0] < a_arr[:, 0]) | (
                (b_arr[:, 0] == a_arr[:, 0]) & (b_arr[:, 1] < a_arr[:, 1])
            )
        out[take_b] = b_arr[take_b]
        return out.reshape(a_in.shape) if flat_layout else out

    return Op(wrapped, name=name, splits=False)


MAX = Op(np.maximum, name="MAX")
MIN = Op(np.minimum, name="MIN")
SUM = Op(np.add, name="SUM")
PROD = Op(np.multiply, name="PROD")
LAND = _logical(np.logical_and, "LAND")
LOR = _logical(np.logical_or, "LOR")
LXOR = _logical(np.logical_xor, "LXOR")
BAND = Op(np.bitwise_and, name="BAND")
BOR = Op(np.bitwise_or, name="BOR")
BXOR = Op(np.bitwise_xor, name="BXOR")
MAXLOC = _pairwise(max, "MAXLOC")
MINLOC = _pairwise(min, "MINLOC")

#: All predefined operations, by MPI name.
PREDEFINED: dict[str, Op] = {
    op.name: op
    for op in (MAX, MIN, SUM, PROD, LAND, LOR, LXOR, BAND, BOR, BXOR, MAXLOC, MINLOC)
}
