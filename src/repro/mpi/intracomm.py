"""Intracommunicators: collectives and communicator construction.

The high level of the paper's Fig. 1 — "The MPJ collective
Communications (High level)" — implemented in pure Python over the
base-level point-to-point, exactly as MPJ Express implements its
collectives over mpjdev.  All internal traffic runs on the
communicator's *collective context*, so user point-to-point can never
be matched by collective plumbing.

Built-in algorithms (chosen to match common MPI practice at 2006-era
scale):

===============  =================================================
Barrier          dissemination (⌈log2 p⌉ rounds)
Bcast            binomial tree
Reduce           binomial tree (commutative ops), linear fold else
Allreduce        Reduce to rank 0 + Bcast
Gather/Scatter   linear to/from root
Allgather        ring (p-1 steps)
Allgatherv       Gatherv to rank 0 + Bcast
Alltoall         pairwise non-blocking exchange
Reduce_scatter   Reduce + Scatterv
Scan/Exscan      linear chain
===============  =================================================

Unless a manual override is set with :meth:`set_collective_algorithm`,
each tunable collective consults the decision table in
:mod:`repro.mpi.tuning` on every call — keyed on (collective, message
bytes, communicator size) — and may swap in one of the alternatives
from :mod:`repro.mpi.algorithms` (Rabenseifner allreduce, pipelined
trees, binomial gather/scatter, pairwise reduce-scatter, ring
allgatherv...).  Large contiguous transfers inside collectives ride
the zero-copy segment datapath (:mod:`repro.buffer.window`).

Communicator construction (``dup``/``split``/``create``) agrees on new
context ids with an Allreduce(MAX) over each rank's context counter —
the standard context-agreement trick — so ranks whose histories have
diverged still converge on identical contexts.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.mpi import op as ops
from repro.mpi.comm import (
    Comm,
    TAG_ALLGATHER,
    TAG_ALLTOALL,
    TAG_BARRIER,
    TAG_BCAST,
    TAG_GATHER,
    TAG_REDUCE,
    TAG_SCAN,
    TAG_SCATTER,
)
from repro.mpi.datatype import BYTE, Datatype, OBJECT, datatype_for
from repro.mpi.exceptions import CommunicatorError, MPIException
from repro.mpi.group import Group, UNDEFINED
from repro.mpi.status import MPIStatus


class ContextCounter:
    """Per-rank allocator of communicator context ids."""

    def __init__(self, start: int = 2) -> None:
        self.value = start

    def bump_to(self, floor: int) -> None:
        self.value = max(self.value, floor)


class Intracomm(Comm):
    """A communicator whose group is all of its members."""

    def __init__(
        self,
        devcomm,
        group: Group,
        contexts: tuple[int, int],
        pool=None,
        env: Any = None,
        context_counter: Optional[ContextCounter] = None,
    ) -> None:
        super().__init__(devcomm, group, contexts, pool=pool, env=env)
        self._context_counter = (
            context_counter
            if context_counter is not None
            else ContextCounter(start=contexts[1] + 1)
        )
        #: Per-communicator collective algorithm overrides
        #: (see :mod:`repro.mpi.algorithms`).
        self._algorithms: dict[str, str] = {}

    def set_collective_algorithm(self, collective: str, algorithm: str) -> None:
        """Choose the algorithm for one collective on this communicator.

        Must be called identically on every rank (like any collective
        tuning).  See :data:`repro.mpi.algorithms.REGISTRY` for choices.
        """
        from repro.mpi import algorithms

        algorithms.validate(collective, algorithm)
        self._algorithms[collective] = algorithm

    def _select_algorithm(self, collective: str, nbytes: int):
        """Pick the algorithm for one collective call.

        Manual override first, then the decision table (built-in or the
        one loaded from ``REPRO_COLL_TUNING``), then the built-in
        default.  Returns ``(name, callable-or-None)``; None means the
        built-in implementation.  The key (collective, nbytes, size) is
        identical on every rank, so selection is rank-consistent.
        """
        from repro.mpi import algorithms, tuning

        name = self._algorithms.get(collective)
        if name is None:
            name = tuning.select(collective, nbytes, self.size())
        if name is None or name not in algorithms.REGISTRY[collective]:
            name = algorithms.DEFAULTS[collective]
        return name, algorithms.REGISTRY[collective][name]

    # ==================================================================
    # communicator construction

    def _agree_contexts(self) -> tuple[int, int]:
        """All ranks agree on the next free (pt2pt, coll) context pair."""
        mine = np.array([self._context_counter.value], dtype=np.int64)
        agreed = np.empty(1, dtype=np.int64)
        self.Allreduce(mine, 0, agreed, 0, 1, None, ops.MAX)
        base = int(agreed[0])
        self._context_counter.bump_to(base + 2)
        return (base, base + 1)

    def dup(self) -> "Intracomm":
        """A congruent communicator with fresh contexts.

        Cached attributes propagate according to their keyvals' copy
        policies (see :mod:`repro.mpi.attributes`)."""
        self._check_live()
        contexts = self._agree_contexts()
        clone = Intracomm(
            self._devcomm.sub_comm(list(range(self.size())), self.rank()),
            self._group,
            contexts,
            pool=self._pool,
            env=self._env,
            context_counter=self._context_counter,
        )
        self._copy_attrs_to(clone)
        return clone

    def split(self, color: int, key: int) -> Optional["Intracomm"]:
        """Partition into sub-communicators by *color*, ordered by *key*.

        Returns None for ranks passing ``color == UNDEFINED``.
        """
        self._check_live()
        contexts = self._agree_contexts()
        triples = self.allgather((color, key, self.rank()))
        if color == UNDEFINED:
            return None
        members = sorted(
            (k, r) for c, k, r in triples if c == color
        )
        ranks = [r for _k, r in members]
        my_new_rank = ranks.index(self.rank())
        new_group = Group(
            [self._group.pid(r) for r in ranks],
            my_uid=self._group.pid(self.rank()).uid,
        )
        return Intracomm(
            self._devcomm.sub_comm(ranks, my_new_rank),
            new_group,
            contexts,
            pool=self._pool,
            env=self._env,
            context_counter=self._context_counter,
        )

    def create(self, group: Group) -> Optional["Intracomm"]:
        """Communicator over *group* (None on ranks outside it).

        Collective over the parent: every parent rank must call it.
        """
        self._check_live()
        contexts = self._agree_contexts()
        my_pid = self._group.pid(self.rank())
        my_new_rank = group.rank_of(my_pid)
        if my_new_rank == UNDEFINED:
            return None
        parent_ranks = [self._group.rank_of(p) for p in group.pids]
        if any(r == UNDEFINED for r in parent_ranks):
            raise CommunicatorError("create() group is not a subset of the parent")
        new_group = Group(group.pids, my_uid=my_pid.uid)
        return Intracomm(
            self._devcomm.sub_comm(parent_ranks, my_new_rank),
            new_group,
            contexts,
            pool=self._pool,
            env=self._env,
            context_counter=self._context_counter,
        )

    Dup = dup
    Split = split
    Create = create

    def create_cart(
        self,
        dims: Sequence[int],
        periods: Sequence[bool],
        reorder: bool = False,
    ):
        """Cartesian topology communicator (paper: virtual topologies)."""
        from repro.mpi.cartcomm import CartComm

        self._check_live()
        contexts = self._agree_contexts()
        return CartComm._construct(self, contexts, dims, periods, reorder)

    def create_graph(
        self, index: Sequence[int], edges: Sequence[int], reorder: bool = False
    ):
        """Graph topology communicator."""
        from repro.mpi.graphcomm import GraphComm

        self._check_live()
        contexts = self._agree_contexts()
        return GraphComm._construct(self, contexts, index, edges, reorder)

    Create_cart = create_cart
    Create_graph = create_graph

    def create_intercomm(
        self,
        local_leader: int,
        peer_comm: "Intracomm",
        remote_leader: int,
        tag: int,
    ):
        """Build an intercommunicator; see :mod:`repro.mpi.intercomm`."""
        from repro.mpi.intercomm import Intercomm

        self._check_live()
        return Intercomm._construct(self, local_leader, peer_comm, remote_leader, tag)

    Create_intercomm = create_intercomm

    # ==================================================================
    # collective plumbing

    def _coll_send(self, buf, offset, count, datatype, dest, tag) -> None:
        self._coll_isend(buf, offset, count, datatype, dest, tag).wait()

    def _coll_isend(self, buf, offset, count, datatype, dest, tag):
        req = self._window_isend(
            buf, offset, count, datatype, dest, tag, context=self._context_coll
        )
        if req is not None:
            return req
        return self.Isend(buf, offset, count, datatype, dest, tag, context=self._context_coll)

    def _coll_recv(self, buf, offset, count, datatype, src, tag) -> MPIStatus:
        return self._coll_irecv(buf, offset, count, datatype, src, tag).wait()

    def _coll_irecv(self, buf, offset, count, datatype, src, tag):
        req = self._window_irecv(
            buf, offset, count, datatype, src, tag, context=self._context_coll
        )
        if req is not None:
            return req
        return self.Irecv(buf, offset, count, datatype, src, tag, context=self._context_coll)

    @staticmethod
    def _resolve_type(buf, datatype: Optional[Datatype]) -> Datatype:
        if datatype is not None:
            return datatype
        if isinstance(buf, np.ndarray):
            return datatype_for(buf)
        raise MPIException("datatype may be omitted only for numpy arrays")

    def _coll_nbytes(self, buf=None, count=0, datatype=None) -> int:
        """Packed byte size of one collective operand (0 if unknown)."""
        if not count:
            return 0
        try:
            return self._resolve_type(buf, datatype).packed_size(count)
        except Exception:  # noqa: BLE001 - observed later as a real error
            return 0

    def _coll_observe(
        self, name, buf=None, count=0, datatype=None, algorithm=None
    ) -> None:
        """One metrics tick per collective call (repro.obs)."""
        self._observe_collective(
            name, self._coll_nbytes(buf, count, datatype), algorithm=algorithm
        )

    def _check_vector_args(self, counts, displs=None) -> None:
        """Validate per-rank count/displacement vectors."""
        size = self.size()
        if len(counts) != size:
            raise MPIException(
                f"counts vector has {len(counts)} entries for {size} ranks"
            )
        if displs is not None and len(displs) != size:
            raise MPIException(
                f"displs vector has {len(displs)} entries for {size} ranks"
            )

    # ==================================================================
    # Barrier

    def Barrier(self) -> None:
        """Dissemination barrier: ⌈log2 p⌉ sendrecv rounds."""
        self._check_live()
        self._coll_observe("barrier")
        size, rank = self.size(), self.rank()
        if size == 1:
            return
        token = np.zeros(1, dtype=np.int8)
        sink = np.zeros(1, dtype=np.int8)
        mask = 1
        while mask < size:
            dest = (rank + mask) % size
            src = (rank - mask) % size
            rreq = self._coll_irecv(sink, 0, 1, BYTE, src, TAG_BARRIER)
            sreq = self._coll_isend(token, 0, 1, BYTE, dest, TAG_BARRIER)
            rreq.wait()
            sreq.wait()
            mask <<= 1

    barrier = Barrier

    # ==================================================================
    # Bcast

    def Bcast(
        self,
        buf: Any,
        offset: int,
        count: int,
        datatype: Optional[Datatype],
        root: int,
    ) -> None:
        """Broadcast from *root* (algorithm selected per call)."""
        self._check_live()
        self._check_rank(root)
        nbytes = self._coll_nbytes(buf, count, datatype)
        algo, fn = self._select_algorithm("bcast", nbytes)
        self._observe_collective("bcast", nbytes, algorithm=algo)
        if fn is not None:
            fn(self, buf, offset, count, self._resolve_type(buf, datatype), root)
            return
        self._bcast_binomial(buf, offset, count, datatype, root)

    def _bcast_binomial(
        self,
        buf: Any,
        offset: int,
        count: int,
        datatype: Optional[Datatype],
        root: int,
    ) -> None:
        """Binomial-tree broadcast (the default algorithm)."""
        size, rank = self.size(), self.rank()
        if size == 1 or count == 0:
            return
        datatype = self._resolve_type(buf, datatype)
        relrank = (rank - root) % size

        # Receive phase: the lowest set bit of relrank names the parent.
        mask = 1
        while mask < size:
            if relrank & mask:
                parent = (relrank - mask + size) % size
                self._coll_recv(buf, offset, count, datatype, (parent + root) % size, TAG_BCAST)
                break
            mask <<= 1

        # Send phase: fan out to children below the received bit.
        mask >>= 1
        while mask > 0:
            if relrank + mask < size:
                child = (relrank + mask) % size
                self._coll_send(buf, offset, count, datatype, (child + root) % size, TAG_BCAST)
            mask >>= 1

    def bcast(self, obj: Any = None, root: int = 0) -> Any:
        """Object broadcast: returns the root's object everywhere."""
        box = [obj]
        self.Bcast(box, 0, 1, OBJECT, root)
        return box[0]

    # ==================================================================
    # Reduce family

    @staticmethod
    def _writable_flat(buf: Any) -> np.ndarray:
        """Flat view of a result array; must be a real view, not a copy."""
        if not isinstance(buf, np.ndarray):
            raise MPIException("reduction result buffers must be numpy arrays")
        if not buf.flags.c_contiguous:
            raise MPIException(
                "reduction result buffers must be C-contiguous (a flat view "
                "of a non-contiguous array would silently be a copy)"
            )
        return buf.reshape(-1)

    def _reduce_local(
        self, buf: Any, offset: int, count: int, datatype: Datatype
    ) -> np.ndarray:
        """Copy the operand window out as a flat contiguous array."""
        if datatype.base_dtype is None:
            raise MPIException("Reduce needs a primitive-based datatype")
        if datatype.extent != datatype.block_count:
            raise MPIException("Reduce needs a contiguous datatype layout")
        flat = np.asarray(buf).reshape(-1)
        n = count * datatype.block_count
        return flat[offset : offset + n].copy()

    def Reduce(
        self,
        sendbuf: Any,
        sendoffset: int,
        recvbuf: Any,
        recvoffset: int,
        count: int,
        datatype: Optional[Datatype],
        op: ops.Op,
        root: int,
    ) -> None:
        """Reduce *count* elements to *root* with *op*."""
        self._check_live()
        self._check_rank(root)
        nbytes = self._coll_nbytes(sendbuf, count, datatype)
        algo, fn = self._select_algorithm("reduce", nbytes)
        self._observe_collective("reduce", nbytes, algorithm=algo)
        datatype = self._resolve_type(sendbuf, datatype)
        if fn is not None:
            fn(self, sendbuf, sendoffset, recvbuf, recvoffset, count, datatype, op, root)
            return
        self._reduce_default(
            sendbuf, sendoffset, recvbuf, recvoffset, count, datatype, op, root
        )

    def _reduce_default(
        self,
        sendbuf: Any,
        sendoffset: int,
        recvbuf: Any,
        recvoffset: int,
        count: int,
        datatype: Datatype,
        op: ops.Op,
        root: int,
    ) -> None:
        """Binomial combine (commutative ops), linear gather-fold else."""
        size, rank = self.size(), self.rank()
        acc = self._reduce_local(sendbuf, sendoffset, count, datatype)
        n = acc.size

        if size > 1 and op.commute:
            # Binomial combine toward root (virtual ranks).
            relrank = (rank - root) % size
            tmp = np.empty_like(acc)
            mask = 1
            while mask < size:
                if relrank & mask:
                    parent = ((relrank - mask) + root) % size
                    self._coll_send(acc, 0, n, None, parent, TAG_REDUCE)
                    break
                child_rel = relrank + mask
                if child_rel < size:
                    child = (child_rel + root) % size
                    self._coll_recv(tmp, 0, n, None, child, TAG_REDUCE)
                    acc = op.reduce_arrays(acc, tmp)
                mask <<= 1
        elif size > 1:
            # Non-commutative: gather to root, fold incrementally in rank
            # order through one reused staging array.
            if rank == root:
                result: Optional[np.ndarray] = None
                tmp = np.empty_like(acc)
                for r in range(size):
                    if r == rank:
                        part = acc
                    else:
                        self._coll_recv(tmp, 0, n, None, r, TAG_REDUCE)
                        part = tmp
                    if result is None:
                        result = part if part is acc else part.copy()
                    else:
                        result = op.reduce_arrays(result, part)
                acc = result
            else:
                self._coll_send(acc, 0, n, None, root, TAG_REDUCE)

        if rank == root:
            flat = self._writable_flat(recvbuf)
            flat[recvoffset : recvoffset + n] = acc

    def Allreduce(
        self,
        sendbuf: Any,
        sendoffset: int,
        recvbuf: Any,
        recvoffset: int,
        count: int,
        datatype: Optional[Datatype],
        op: ops.Op,
    ) -> None:
        """Allreduce (algorithm selected per call; reduce+bcast default)."""
        self._check_live()
        datatype = self._resolve_type(sendbuf, datatype)
        nbytes = self._coll_nbytes(sendbuf, count, datatype)
        algo, fn = self._select_algorithm("allreduce", nbytes)
        self._observe_collective("allreduce", nbytes, algorithm=algo)
        if fn is not None:
            fn(self, sendbuf, sendoffset, recvbuf, recvoffset, count, datatype, op)
            return
        self.Reduce(sendbuf, sendoffset, recvbuf, recvoffset, count, datatype, op, 0)
        self.Bcast(recvbuf, recvoffset, count, datatype, 0)

    def Reduce_scatter(
        self,
        sendbuf: Any,
        sendoffset: int,
        recvbuf: Any,
        recvoffset: int,
        recvcounts: Sequence[int],
        datatype: Optional[Datatype],
        op: ops.Op,
    ) -> None:
        """Reduce then scatter segments of *recvcounts* elements."""
        self._check_live()
        self._check_vector_args(recvcounts)
        datatype = self._resolve_type(sendbuf, datatype)
        nbytes = self._coll_nbytes(sendbuf, int(sum(recvcounts)), datatype)
        algo, fn = self._select_algorithm("reduce_scatter", nbytes)
        self._observe_collective("reduce_scatter", nbytes, algorithm=algo)
        if fn is not None:
            fn(self, sendbuf, sendoffset, recvbuf, recvoffset, recvcounts, datatype, op)
            return
        self._reduce_scatter_default(
            sendbuf, sendoffset, recvbuf, recvoffset, recvcounts, datatype, op
        )

    def _reduce_scatter_default(
        self,
        sendbuf: Any,
        sendoffset: int,
        recvbuf: Any,
        recvoffset: int,
        recvcounts: Sequence[int],
        datatype: Datatype,
        op: ops.Op,
    ) -> None:
        """Reduce to rank 0 + Scatterv; staging buffer at the root only."""
        rank = self.rank()
        total = int(sum(recvcounts))
        full = (
            np.empty(total * datatype.block_count, dtype=datatype.base_dtype)
            if rank == 0
            else None
        )
        self.Reduce(sendbuf, sendoffset, full, 0, total, datatype, op, 0)
        displs = np.concatenate(([0], np.cumsum(recvcounts)[:-1])).astype(int)
        self.Scatterv(
            full, 0, list(recvcounts), list(displs), datatype,
            recvbuf, recvoffset, int(recvcounts[rank]), datatype, 0,
        )

    def Scan(
        self,
        sendbuf: Any,
        sendoffset: int,
        recvbuf: Any,
        recvoffset: int,
        count: int,
        datatype: Optional[Datatype],
        op: ops.Op,
    ) -> None:
        """Inclusive prefix reduction in rank order."""
        self._check_live()
        size, rank = self.size(), self.rank()
        datatype = self._resolve_type(sendbuf, datatype)
        acc = self._reduce_local(sendbuf, sendoffset, count, datatype)
        n = acc.size
        if rank > 0:
            prefix = np.empty_like(acc)
            self._coll_recv(prefix, 0, n, None, rank - 1, TAG_SCAN)
            acc = op.reduce_arrays(prefix, acc)
        if rank < size - 1:
            self._coll_send(acc, 0, n, None, rank + 1, TAG_SCAN)
        flat = self._writable_flat(recvbuf)
        flat[recvoffset : recvoffset + n] = acc

    def Exscan(
        self,
        sendbuf: Any,
        sendoffset: int,
        recvbuf: Any,
        recvoffset: int,
        count: int,
        datatype: Optional[Datatype],
        op: ops.Op,
    ) -> None:
        """Exclusive prefix reduction (recvbuf untouched at rank 0)."""
        self._check_live()
        size, rank = self.size(), self.rank()
        datatype = self._resolve_type(sendbuf, datatype)
        own = self._reduce_local(sendbuf, sendoffset, count, datatype)
        n = own.size
        prefix: Optional[np.ndarray] = None
        if rank > 0:
            prefix = np.empty_like(own)
            self._coll_recv(prefix, 0, n, None, rank - 1, TAG_SCAN)
        combined = own if prefix is None else op.reduce_arrays(prefix.copy(), own)
        if rank < size - 1:
            self._coll_send(combined, 0, n, None, rank + 1, TAG_SCAN)
        if prefix is not None:
            flat = self._writable_flat(recvbuf)
            flat[recvoffset : recvoffset + n] = prefix

    # ==================================================================
    # Gather family

    def Gather(
        self,
        sendbuf: Any, sendoffset: int, sendcount: int, sendtype: Optional[Datatype],
        recvbuf: Any, recvoffset: int, recvcount: int, recvtype: Optional[Datatype],
        root: int,
    ) -> None:
        """Gather to *root*, rank i landing at block i."""
        self._check_live()
        self._check_rank(root)
        nbytes = self._coll_nbytes(sendbuf, sendcount, sendtype) * self.size()
        algo, fn = self._select_algorithm("gather", nbytes)
        self._observe_collective("gather", nbytes, algorithm=algo)
        sendtype = self._resolve_type(sendbuf, sendtype)
        if fn is not None:
            if self.rank() == root:
                recvtype = self._resolve_type(recvbuf, recvtype)
            fn(self, sendbuf, sendoffset, sendcount, sendtype,
               recvbuf, recvoffset, recvcount, recvtype, root)
            return
        self._gather_linear(sendbuf, sendoffset, sendcount, sendtype,
                            recvbuf, recvoffset, recvcount, recvtype, root)

    def _gather_linear(
        self,
        sendbuf: Any, sendoffset: int, sendcount: int, sendtype: Datatype,
        recvbuf: Any, recvoffset: int, recvcount: int, recvtype: Optional[Datatype],
        root: int,
    ) -> None:
        """Linear gather: every rank sends straight to the root."""
        size, rank = self.size(), self.rank()
        if rank != root:
            self._coll_send(sendbuf, sendoffset, sendcount, sendtype, root, TAG_GATHER)
            return
        recvtype = self._resolve_type(recvbuf, recvtype)
        requests = []
        for r in range(size):
            disp = recvoffset + r * recvcount * recvtype.extent
            if r == rank:
                _local_copy(sendbuf, sendoffset, sendcount, sendtype,
                            recvbuf, disp, recvcount, recvtype, self._pool)
            else:
                requests.append(
                    self._coll_irecv(recvbuf, disp, recvcount, recvtype, r, TAG_GATHER)
                )
        for req in requests:
            req.wait()

    def Gatherv(
        self,
        sendbuf: Any, sendoffset: int, sendcount: int, sendtype: Optional[Datatype],
        recvbuf: Any, recvoffset: int, recvcounts: Sequence[int],
        displs: Sequence[int], recvtype: Optional[Datatype], root: int,
    ) -> None:
        """Gather with per-rank counts and displacements (in elements)."""
        self._check_live()
        self._check_rank(root)
        size, rank = self.size(), self.rank()
        sendtype = self._resolve_type(sendbuf, sendtype)
        if rank != root:
            self._coll_send(sendbuf, sendoffset, sendcount, sendtype, root, TAG_GATHER)
            return
        if len(recvcounts) != size or len(displs) != size:
            raise MPIException("recvcounts/displs must have one entry per rank")
        recvtype = self._resolve_type(recvbuf, recvtype)
        requests = []
        for r in range(size):
            disp = recvoffset + displs[r] * recvtype.extent
            if r == rank:
                _local_copy(sendbuf, sendoffset, sendcount, sendtype,
                            recvbuf, disp, recvcounts[r], recvtype, self._pool)
            else:
                requests.append(
                    self._coll_irecv(recvbuf, disp, recvcounts[r], recvtype, r, TAG_GATHER)
                )
        for req in requests:
            req.wait()

    def Scatter(
        self,
        sendbuf: Any, sendoffset: int, sendcount: int, sendtype: Optional[Datatype],
        recvbuf: Any, recvoffset: int, recvcount: int, recvtype: Optional[Datatype],
        root: int,
    ) -> None:
        """Scatter from *root*, block i going to rank i."""
        self._check_live()
        self._check_rank(root)
        nbytes = self._coll_nbytes(recvbuf, recvcount, recvtype) * self.size()
        algo, fn = self._select_algorithm("scatter", nbytes)
        self._observe_collective("scatter", nbytes, algorithm=algo)
        recvtype = self._resolve_type(recvbuf, recvtype)
        if fn is not None:
            if self.rank() == root:
                sendtype = self._resolve_type(sendbuf, sendtype)
            fn(self, sendbuf, sendoffset, sendcount, sendtype,
               recvbuf, recvoffset, recvcount, recvtype, root)
            return
        self._scatter_linear(sendbuf, sendoffset, sendcount, sendtype,
                             recvbuf, recvoffset, recvcount, recvtype, root)

    def _scatter_linear(
        self,
        sendbuf: Any, sendoffset: int, sendcount: int, sendtype: Optional[Datatype],
        recvbuf: Any, recvoffset: int, recvcount: int, recvtype: Datatype,
        root: int,
    ) -> None:
        """Linear scatter: the root sends straight to every rank."""
        size, rank = self.size(), self.rank()
        if rank != root:
            self._coll_recv(recvbuf, recvoffset, recvcount, recvtype, root, TAG_SCATTER)
            return
        sendtype = self._resolve_type(sendbuf, sendtype)
        requests = []
        for r in range(size):
            disp = sendoffset + r * sendcount * sendtype.extent
            if r == rank:
                _local_copy(sendbuf, disp, sendcount, sendtype,
                            recvbuf, recvoffset, recvcount, recvtype, self._pool)
            else:
                requests.append(
                    self._coll_isend(sendbuf, disp, sendcount, sendtype, r, TAG_SCATTER)
                )
        for req in requests:
            req.wait()

    def Scatterv(
        self,
        sendbuf: Any, sendoffset: int, sendcounts: Sequence[int],
        displs: Sequence[int], sendtype: Optional[Datatype],
        recvbuf: Any, recvoffset: int, recvcount: int, recvtype: Optional[Datatype],
        root: int,
    ) -> None:
        """Scatter with per-rank counts and displacements."""
        self._check_live()
        self._check_rank(root)
        size, rank = self.size(), self.rank()
        recvtype = self._resolve_type(recvbuf, recvtype)
        if rank != root:
            self._coll_recv(recvbuf, recvoffset, recvcount, recvtype, root, TAG_SCATTER)
            return
        if len(sendcounts) != size or len(displs) != size:
            raise MPIException("sendcounts/displs must have one entry per rank")
        sendtype = self._resolve_type(sendbuf, sendtype)
        requests = []
        for r in range(size):
            disp = sendoffset + displs[r] * sendtype.extent
            if r == rank:
                _local_copy(sendbuf, disp, sendcounts[r], sendtype,
                            recvbuf, recvoffset, recvcount, recvtype, self._pool)
            else:
                requests.append(
                    self._coll_isend(sendbuf, disp, sendcounts[r], sendtype, r, TAG_SCATTER)
                )
        for req in requests:
            req.wait()

    def Allgather(
        self,
        sendbuf: Any, sendoffset: int, sendcount: int, sendtype: Optional[Datatype],
        recvbuf: Any, recvoffset: int, recvcount: int, recvtype: Optional[Datatype],
    ) -> None:
        """Allgather (default: ring, p-1 steps forwarding one block)."""
        self._check_live()
        sendtype = self._resolve_type(sendbuf, sendtype)
        recvtype = self._resolve_type(recvbuf, recvtype)
        nbytes = self._coll_nbytes(sendbuf, sendcount, sendtype) * self.size()
        algo, fn = self._select_algorithm("allgather", nbytes)
        self._observe_collective("allgather", nbytes, algorithm=algo)
        if fn is not None:
            fn(self, sendbuf, sendoffset, sendcount, sendtype,
               recvbuf, recvoffset, recvcount, recvtype)
            return
        self._allgather_ring(sendbuf, sendoffset, sendcount, sendtype,
                             recvbuf, recvoffset, recvcount, recvtype)

    def _allgather_ring(
        self,
        sendbuf: Any, sendoffset: int, sendcount: int, sendtype: Datatype,
        recvbuf: Any, recvoffset: int, recvcount: int, recvtype: Datatype,
    ) -> None:
        """Ring allgather: p-1 steps, each forwarding one block."""
        size, rank = self.size(), self.rank()
        # Own block into place first.
        own_disp = recvoffset + rank * recvcount * recvtype.extent
        _local_copy(sendbuf, sendoffset, sendcount, sendtype,
                    recvbuf, own_disp, recvcount, recvtype, self._pool)
        if size == 1:
            return
        right = (rank + 1) % size
        left = (rank - 1) % size
        for step in range(size - 1):
            send_block = (rank - step) % size
            recv_block = (rank - step - 1) % size
            send_disp = recvoffset + send_block * recvcount * recvtype.extent
            recv_disp = recvoffset + recv_block * recvcount * recvtype.extent
            rreq = self._coll_irecv(recvbuf, recv_disp, recvcount, recvtype, left, TAG_ALLGATHER)
            sreq = self._coll_isend(recvbuf, send_disp, recvcount, recvtype, right, TAG_ALLGATHER)
            rreq.wait()
            sreq.wait()

    def Allgatherv(
        self,
        sendbuf: Any, sendoffset: int, sendcount: int, sendtype: Optional[Datatype],
        recvbuf: Any, recvoffset: int, recvcounts: Sequence[int],
        displs: Sequence[int], recvtype: Optional[Datatype],
    ) -> None:
        """Allgather with per-rank counts and displacements."""
        self._check_live()
        self._check_vector_args(recvcounts, displs)
        recvtype = self._resolve_type(recvbuf, recvtype)
        nbytes = self._coll_nbytes(recvbuf, int(sum(recvcounts)), recvtype)
        algo, fn = self._select_algorithm("allgatherv", nbytes)
        self._observe_collective("allgatherv", nbytes, algorithm=algo)
        if fn is not None:
            sendtype = self._resolve_type(sendbuf, sendtype)
            fn(self, sendbuf, sendoffset, sendcount, sendtype,
               recvbuf, recvoffset, recvcounts, displs, recvtype)
            return
        self._allgatherv_gather_bcast(sendbuf, sendoffset, sendcount, sendtype,
                                      recvbuf, recvoffset, recvcounts, displs, recvtype)

    def _allgatherv_gather_bcast(
        self,
        sendbuf: Any, sendoffset: int, sendcount: int, sendtype: Optional[Datatype],
        recvbuf: Any, recvoffset: int, recvcounts: Sequence[int],
        displs: Sequence[int], recvtype: Datatype,
    ) -> None:
        """Gatherv to rank 0 + Bcast of the assembled span."""
        self.Gatherv(sendbuf, sendoffset, sendcount, sendtype,
                     recvbuf, recvoffset, recvcounts, displs, recvtype, 0)
        total_span = max(
            d + c for d, c in zip(displs, recvcounts)
        ) if len(recvcounts) else 0
        self.Bcast(recvbuf, recvoffset, int(total_span), recvtype, 0)

    def Alltoall(
        self,
        sendbuf: Any, sendoffset: int, sendcount: int, sendtype: Optional[Datatype],
        recvbuf: Any, recvoffset: int, recvcount: int, recvtype: Optional[Datatype],
    ) -> None:
        """Pairwise exchange: every rank sends block j to rank j."""
        self._check_live()
        self._coll_observe("alltoall", sendbuf, sendcount, sendtype)
        size, rank = self.size(), self.rank()
        sendtype = self._resolve_type(sendbuf, sendtype)
        recvtype = self._resolve_type(recvbuf, recvtype)
        requests = []
        for r in range(size):
            recv_disp = recvoffset + r * recvcount * recvtype.extent
            send_disp = sendoffset + r * sendcount * sendtype.extent
            if r == rank:
                _local_copy(sendbuf, send_disp, sendcount, sendtype,
                            recvbuf, recv_disp, recvcount, recvtype, self._pool)
                continue
            requests.append(
                self._coll_irecv(recvbuf, recv_disp, recvcount, recvtype, r, TAG_ALLTOALL)
            )
            requests.append(
                self._coll_isend(sendbuf, send_disp, sendcount, sendtype, r, TAG_ALLTOALL)
            )
        for req in requests:
            req.wait()

    def Alltoallv(
        self,
        sendbuf: Any, sendoffset: int, sendcounts: Sequence[int],
        sdispls: Sequence[int], sendtype: Optional[Datatype],
        recvbuf: Any, recvoffset: int, recvcounts: Sequence[int],
        rdispls: Sequence[int], recvtype: Optional[Datatype],
    ) -> None:
        """Alltoall with per-peer counts and displacements."""
        self._check_live()
        size, rank = self.size(), self.rank()
        if not (len(sendcounts) == len(sdispls) == len(recvcounts) == len(rdispls) == size):
            raise MPIException("alltoallv count/displacement arrays must match size")
        sendtype = self._resolve_type(sendbuf, sendtype)
        recvtype = self._resolve_type(recvbuf, recvtype)
        requests = []
        for r in range(size):
            recv_disp = recvoffset + rdispls[r] * recvtype.extent
            send_disp = sendoffset + sdispls[r] * sendtype.extent
            if r == rank:
                _local_copy(sendbuf, send_disp, sendcounts[r], sendtype,
                            recvbuf, recv_disp, recvcounts[r], recvtype, self._pool)
                continue
            requests.append(
                self._coll_irecv(recvbuf, recv_disp, recvcounts[r], recvtype, r, TAG_ALLTOALL)
            )
            requests.append(
                self._coll_isend(sendbuf, send_disp, sendcounts[r], sendtype, r, TAG_ALLTOALL)
            )
        for req in requests:
            req.wait()

    # ==================================================================
    # lowercase object collectives (mpi4py style)

    def gather(self, obj: Any, root: int = 0) -> Optional[list]:
        """Gather objects: root receives the rank-ordered list."""
        self._check_live()
        self._check_rank(root)
        size, rank = self.size(), self.rank()
        if rank != root:
            self._coll_send([obj], 0, 1, OBJECT, root, TAG_GATHER)
            return None
        out: list = [None] * size
        out[rank] = obj
        for r in range(size):
            if r != rank:
                box = [None]
                self._coll_recv(box, 0, 1, OBJECT, r, TAG_GATHER)
                out[r] = box[0]
        return out

    def scatter(self, objs: Optional[Sequence[Any]] = None, root: int = 0) -> Any:
        """Scatter a sequence of objects, one per rank."""
        self._check_live()
        self._check_rank(root)
        size, rank = self.size(), self.rank()
        if rank == root:
            if objs is None or len(objs) != size:
                raise MPIException(f"scatter needs exactly {size} items at the root")
            for r in range(size):
                if r != rank:
                    self._coll_send([objs[r]], 0, 1, OBJECT, r, TAG_SCATTER)
            return objs[rank]
        box = [None]
        self._coll_recv(box, 0, 1, OBJECT, root, TAG_SCATTER)
        return box[0]

    def allgather(self, obj: Any) -> list:
        """Gather objects everywhere (gather + bcast)."""
        out = self.gather(obj, root=0)
        return self.bcast(out, root=0)

    def alltoall(self, objs: Sequence[Any]) -> list:
        """Each rank sends item j to rank j; receives one from each."""
        self._check_live()
        size, rank = self.size(), self.rank()
        if len(objs) != size:
            raise MPIException(f"alltoall needs exactly {size} items")
        out: list = [None] * size
        out[rank] = objs[rank]
        requests = []
        boxes: dict[int, list] = {}
        for r in range(size):
            if r == rank:
                continue
            boxes[r] = [None]
            requests.append((r, self._coll_irecv(boxes[r], 0, 1, OBJECT, r, TAG_ALLTOALL)))
            requests.append((-1, self._coll_isend([objs[r]], 0, 1, OBJECT, r, TAG_ALLTOALL)))
        for r, req in requests:
            req.wait()
        for r, box in boxes.items():
            out[r] = box[0]
        return out

    def reduce(self, obj: Any, op=None, root: int = 0) -> Any:
        """Object reduction: fold gathered values in rank order at root."""
        values = self.gather(obj, root=root)
        if values is None:
            return None
        folder = op if op is not None else (lambda a, b: a + b)
        acc = values[0]
        for value in values[1:]:
            acc = folder(acc, value)
        return acc

    def allreduce(self, obj: Any, op=None) -> Any:
        """Object reduction everywhere."""
        return self.bcast(self.reduce(obj, op=op, root=0), root=0)

    def scan(self, obj: Any, op=None) -> Any:
        """Inclusive object prefix reduction in rank order."""
        self._check_live()
        size, rank = self.size(), self.rank()
        folder = op if op is not None else (lambda a, b: a + b)
        acc = obj
        if rank > 0:
            box = [None]
            self._coll_recv(box, 0, 1, OBJECT, rank - 1, TAG_SCAN)
            acc = folder(box[0], obj)
        if rank < size - 1:
            self._coll_send([acc], 0, 1, OBJECT, rank + 1, TAG_SCAN)
        return acc


def _local_copy(
    sendbuf, sendoffset, sendcount, sendtype,
    recvbuf, recvoffset, recvcount, recvtype, pool,
) -> None:
    """Root's self-block: pack/unpack through a buffer, no device trip.

    Going through the pack/unpack machinery (rather than a numpy slice
    copy) keeps derived-datatype semantics identical for the local and
    remote paths.
    """
    if sendcount == 0:
        return
    staging = pool.acquire(sendtype.packed_size(sendcount) + 64)
    try:
        sendtype.pack(staging, sendbuf, sendoffset, sendcount)
        staging.commit()
        recvtype.unpack(staging, recvbuf, recvoffset, recvcount)
    finally:
        staging.free()
