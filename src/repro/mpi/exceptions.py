"""MPI-level exception hierarchy."""

from __future__ import annotations


class MPIException(Exception):
    """Base error for the MPI API layer (mpijava's MPIException)."""


class InvalidRankError(MPIException):
    """A rank argument is outside the communicator."""


class InvalidTagError(MPIException):
    """A tag argument is negative (and not a wildcard)."""


class CountMismatchError(MPIException):
    """A received message does not fit the posted receive buffer."""


class DatatypeError(MPIException):
    """Illegal datatype construction or use."""


class CommunicatorError(MPIException):
    """Illegal communicator operation (e.g. using a freed communicator)."""


class TopologyError(MPIException):
    """Illegal virtual-topology construction or query."""
