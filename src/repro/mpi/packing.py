"""Explicit message packing (MPI_Pack / MPI_Unpack).

MPI-1 lets applications assemble heterogeneous messages themselves:
pack several typed pieces into one contiguous byte stream, send it as
``MPI_PACKED``, and unpack incrementally at the receiver.  In MPJ
Express this is a thin veneer over mpjbuf — a :class:`Packer` IS a
managed :class:`~repro.buffer.Buffer` — which is exactly how the real
library implements it.

Usage::

    packer = Packer()
    packer.pack(lengths, 0, 3, mpi.INT)
    packer.pack(values, 0, 10, mpi.DOUBLE)
    packer.pack_object({"meta": True})
    wire = packer.tobytes()
    comm.Send(np.frombuffer(wire, dtype=np.int8), 0, len(wire), mpi.PACKED, 1, 0)

    # receiver
    raw = np.zeros(nbytes, dtype=np.int8)
    comm.Recv(raw, 0, nbytes, mpi.PACKED, 0, 0)
    unpacker = Unpacker(raw.tobytes())
    unpacker.unpack(lengths, 0, 3, mpi.INT)
    ...
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.buffer import Buffer
from repro.buffer.types import SectionType
from repro.mpi.datatype import BasicType, Datatype
from repro.mpi.exceptions import MPIException

#: Datatype for transporting explicitly packed bytes (MPI_PACKED).
PACKED = BasicType(SectionType.BYTE, "PACKED")


class Packer:
    """Incremental packing of typed data into one byte stream."""

    def __init__(self, capacity: int = 256) -> None:
        self._buffer = Buffer(capacity=capacity)

    def pack(self, data: Any, offset: int, count: int, datatype: Datatype) -> "Packer":
        """Append *count* elements of *datatype* from *data*."""
        if self._buffer.committed:
            raise MPIException("pack() after tobytes(); create a new Packer")
        datatype.pack(self._buffer, data, offset, count)
        return self

    def pack_object(self, obj: Any) -> "Packer":
        """Append one pickled Python object."""
        if self._buffer.committed:
            raise MPIException("pack() after tobytes(); create a new Packer")
        self._buffer.write_object(obj)
        return self

    @property
    def size(self) -> int:
        """Bytes the packed stream will occupy (excluding wire header)."""
        return self._buffer.size

    def tobytes(self) -> bytes:
        """Finalize and return the packed byte stream."""
        return self._buffer.commit().to_wire()

    def as_array(self) -> np.ndarray:
        """The packed stream as an int8 array, ready for Send(PACKED)."""
        return np.frombuffer(self.tobytes(), dtype=np.int8).copy()


class Unpacker:
    """Incremental unpacking of a packed byte stream."""

    def __init__(self, data: bytes | bytearray | memoryview | np.ndarray) -> None:
        if isinstance(data, np.ndarray):
            data = data.tobytes()
        self._buffer = Buffer.from_wire(data)

    def unpack(self, dest: Any, offset: int, count: int, datatype: Datatype) -> int:
        """Extract the next section into *dest*; returns element count."""
        return datatype.unpack(self._buffer, dest, offset, count)

    def unpack_object(self) -> Any:
        """Extract the next pickled object."""
        return self._buffer.read_object()

    @property
    def remaining_sections(self) -> bool:
        return self._buffer.has_static_data()

    @property
    def remaining_objects(self) -> bool:
        return self._buffer.has_objects()


def pack_size(count: int, datatype: Datatype) -> int:
    """Upper bound on packed bytes for *count* elements (MPI_Pack_size).

    Includes the per-section header and the stream's wire header, so a
    sum of ``pack_size`` results is a safe receive-buffer size.
    """
    return datatype.packed_size(count) + 5 + 16
