"""Non-blocking collectives (an MPI-3-flavoured extension).

The paper predates MPI-3, but its thread-safety contribution is
exactly what makes this extension natural: because the library is
MPI_THREAD_MULTIPLE, collectives can progress on a helper thread while
the caller computes — the communication/computation overlap the
ANY_SOURCE experiment (Section V-A) motivates.

Design: each communicator gets (lazily) one **NBC worker thread** and
one dedicated duplicated communicator.  Issuing ``ibarrier(comm)`` etc.
only enqueues the operation — never blocks — and the worker executes
queued operations strictly in issue order, which is how MPI specifies
non-blocking collectives must be matched.  The dedicated dup keeps NBC
traffic from ever matching the caller's own collectives; the dup
itself is created *on the worker thread* (first operation), so even
that collective step cannot block an issuing thread.

Semantics and caveats:

* ``i...()`` returns an :class:`NBCRequest`; ``wait()``/``test()``
  complete it; exceptions inside the collective surface from there.
* Operations on one communicator run sequentially (in issue order).
  Overlap is between communication and *computation*, and between NBC
  ops on different communicators.
* Buffers belong to the operation until ``wait()`` returns.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Optional


class NBCRequest:
    """Handle for an in-flight non-blocking collective."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result: Any = None
        self._error: Optional[BaseException] = None

    def _finish(self, result: Any = None, error: Optional[BaseException] = None) -> None:
        self._result = result
        self._error = error
        self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> Any:
        if not self._event.wait(timeout=timeout):
            raise TimeoutError("non-blocking collective did not complete")
        if self._error is not None:
            raise self._error
        return self._result

    def test(self) -> bool:
        """True once complete (re-raises a failure immediately)."""
        if not self._event.is_set():
            return False
        if self._error is not None:
            raise self._error
        return True

    Wait = wait
    Test = test


class NBCWorker:
    """Per-communicator executor of non-blocking collectives."""

    def __init__(self, comm) -> None:
        self._comm = comm
        self._queue: "queue.Queue" = queue.Queue()
        self._dup = None
        self._thread = threading.Thread(
            target=self._run, name="nbc-worker", daemon=True
        )
        self._thread.start()

    def submit(self, fn: Callable[[Any], Any]) -> NBCRequest:
        request = NBCRequest()
        self._queue.put((fn, request))
        return request

    def _run(self) -> None:
        while True:
            fn, request = self._queue.get()
            try:
                if self._dup is None:
                    # First operation: build the dedicated communicator.
                    # This is collective — every rank's worker performs
                    # it as ITS first operation, so they rendezvous here
                    # without blocking any issuing thread.
                    self._dup = self._comm.dup()
                request._finish(result=fn(self._dup))
            except BaseException as exc:  # noqa: BLE001 - surfaced in wait()
                request._finish(error=exc)


def _worker_for(comm) -> NBCWorker:
    worker = getattr(comm, "_nbc_worker", None)
    if worker is None:
        worker = NBCWorker(comm)
        comm._nbc_worker = worker
    return worker


# ----------------------------------------------------------------------
# the non-blocking collective verbs


def ibarrier(comm) -> NBCRequest:
    """Non-blocking barrier: complete when every rank has entered."""
    return _worker_for(comm).submit(lambda c: c.Barrier())


def ibcast(comm, buf, offset, count, datatype, root) -> NBCRequest:
    """Non-blocking broadcast; *buf* must stay untouched until wait()."""
    return _worker_for(comm).submit(
        lambda c: c.Bcast(buf, offset, count, datatype, root)
    )


def iallreduce(comm, sendbuf, sendoffset, recvbuf, recvoffset, count, datatype, op) -> NBCRequest:
    """Non-blocking allreduce; buffers owned by the op until wait()."""
    return _worker_for(comm).submit(
        lambda c: c.Allreduce(sendbuf, sendoffset, recvbuf, recvoffset, count, datatype, op)
    )


def iallgather(comm, sendbuf, sendoffset, sendcount, sendtype,
               recvbuf, recvoffset, recvcount, recvtype) -> NBCRequest:
    """Non-blocking allgather."""
    return _worker_for(comm).submit(
        lambda c: c.Allgather(sendbuf, sendoffset, sendcount, sendtype,
                              recvbuf, recvoffset, recvcount, recvtype)
    )


def igather_objects(comm, obj, root: int = 0) -> NBCRequest:
    """Non-blocking object gather; wait() returns the list at root."""
    return _worker_for(comm).submit(lambda c: c.gather(obj, root=root))
