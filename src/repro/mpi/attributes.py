"""Communicator attribute caching (MPI-1 keyvals).

Libraries layered over MPI stash per-communicator state — cached
sub-communicators, tuned parameters, topology metadata — in
communicator attributes keyed by process-local *keyvals*.  The MPI-1
interface, pythonified:

```python
KEY = mpi.create_keyval(copy_on_dup=True)
comm.set_attr(KEY, {"level": 3})
comm.get_attr(KEY)            # -> {"level": 3} (None if unset)
dup = comm.dup()              # copies the attribute (copy_on_dup)
comm.delete_attr(KEY)
mpi.free_keyval(KEY)
```

``copy_on_dup`` may be ``True`` (shallow-copy the value to the new
communicator), ``False`` (do not propagate — MPI_NULL_COPY_FN), or a
callable ``fn(value) -> new_value`` (MPI's user copy function;
returning ``None`` drops the attribute).
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, Optional, Union

from repro.mpi.exceptions import MPIException

_keyval_counter = itertools.count(1)
_keyval_lock = threading.Lock()
#: keyval -> copy policy (True / False / callable)
_keyvals: dict[int, Union[bool, Callable[[Any], Any]]] = {}


def create_keyval(copy_on_dup: Union[bool, Callable[[Any], Any]] = False) -> int:
    """Allocate a new attribute key (MPI_Keyval_create)."""
    with _keyval_lock:
        keyval = next(_keyval_counter)
        _keyvals[keyval] = copy_on_dup
        return keyval


def free_keyval(keyval: int) -> None:
    """Release a key (MPI_Keyval_free); existing attributes survive."""
    with _keyval_lock:
        _keyvals.pop(keyval, None)


def _copy_policy(keyval: int) -> Union[bool, Callable[[Any], Any], None]:
    with _keyval_lock:
        return _keyvals.get(keyval)


class AttributeMixin:
    """Attribute storage mixed into Comm."""

    def _attrs(self) -> dict[int, Any]:
        attrs = getattr(self, "_attributes", None)
        if attrs is None:
            attrs = {}
            self._attributes = attrs
        return attrs

    def set_attr(self, keyval: int, value: Any) -> None:
        """Attach *value* under *keyval* (MPI_Attr_put)."""
        if _copy_policy(keyval) is None:
            raise MPIException(f"keyval {keyval} was never created (or freed)")
        self._attrs()[keyval] = value

    def get_attr(self, keyval: int) -> Optional[Any]:
        """Value under *keyval*, or None (MPI_Attr_get)."""
        return self._attrs().get(keyval)

    def delete_attr(self, keyval: int) -> None:
        """Remove the attribute if present (MPI_Attr_delete)."""
        self._attrs().pop(keyval, None)

    def _copy_attrs_to(self, other: "AttributeMixin") -> None:
        """Propagate attributes on dup() according to copy policies."""
        for keyval, value in self._attrs().items():
            policy = _copy_policy(keyval)
            if policy is True:
                other._attrs()[keyval] = value
            elif callable(policy):
                copied = policy(value)
                if copied is not None:
                    other._attrs()[keyval] = copied
            # False / None: do not propagate.

    Set_attr = set_attr
    Get_attr = get_attr
    Delete_attr = delete_attr
