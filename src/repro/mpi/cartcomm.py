"""Cartesian virtual topology (MPI ``Cart_create`` family).

One of the "higher-level features of MPI like derived datatypes ...
virtual topologies, and inter-communicators" that the paper notes
MPJ/Ibis does not implement but MPJ Express does (Section II).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.mpi.exceptions import TopologyError
from repro.mpi.group import UNDEFINED
from repro.mpi.intracomm import Intracomm


def dims_create(nnodes: int, ndims: int, dims: Optional[Sequence[int]] = None) -> list[int]:
    """Balanced dimension sizes for *nnodes* over *ndims* (MPI_Dims_create).

    Entries of *dims* that are nonzero are kept fixed; zeros are filled
    so the product equals *nnodes*, as square as possible.
    """
    out = list(dims) if dims is not None else [0] * ndims
    if len(out) != ndims:
        raise TopologyError(f"dims has {len(out)} entries for ndims={ndims}")
    fixed = 1
    free_slots = [i for i, d in enumerate(out) if d == 0]
    for d in out:
        if d < 0:
            raise TopologyError("dims entries must be non-negative")
        if d:
            fixed *= d
    if fixed == 0 or nnodes % fixed != 0:
        raise TopologyError(f"cannot fit {nnodes} nodes into fixed dims {out}")
    remaining = nnodes // fixed
    # Greedy: repeatedly give the largest prime factor to the smallest slot.
    factors: list[int] = []
    n = remaining
    f = 2
    while f * f <= n:
        while n % f == 0:
            factors.append(f)
            n //= f
        f += 1
    if n > 1:
        factors.append(n)
    sizes = [1] * len(free_slots)
    for factor in sorted(factors, reverse=True):
        sizes[int(np.argmin(sizes))] *= factor
    for slot, s in zip(free_slots, sorted(sizes, reverse=True)):
        out[slot] = s
    return out


class CartComm(Intracomm):
    """Intracommunicator with an attached Cartesian grid."""

    def __init__(self, *args, dims: Sequence[int], periods: Sequence[bool], **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._dims = tuple(int(d) for d in dims)
        self._periods = tuple(bool(p) for p in periods)

    @classmethod
    def _construct(
        cls,
        parent: Intracomm,
        contexts: tuple[int, int],
        dims: Sequence[int],
        periods: Sequence[bool],
        reorder: bool,
    ) -> Optional["CartComm"]:
        nnodes = int(np.prod(dims)) if len(dims) else 1
        if len(dims) != len(periods):
            raise TopologyError("dims and periods must have equal length")
        if any(d < 1 for d in dims):
            raise TopologyError("every dimension must be >= 1")
        if nnodes > parent.size():
            raise TopologyError(
                f"grid of {nnodes} does not fit communicator of {parent.size()}"
            )
        rank = parent.rank()
        # reorder is a permission, not an obligation: identity mapping.
        if rank >= nnodes:
            return None
        ranks = list(range(nnodes))
        group = parent.group().incl(ranks)
        return cls(
            parent._devcomm.sub_comm(ranks, rank),
            group,
            contexts,
            pool=parent._pool,
            env=parent._env,
            context_counter=parent._context_counter,
            dims=dims,
            periods=periods,
        )

    # ------------------------------------------------------------------
    # queries

    def get_topo(self) -> tuple[tuple[int, ...], tuple[bool, ...], tuple[int, ...]]:
        """(dims, periods, my coords) — MPI_Cart_get."""
        return self._dims, self._periods, self.coords(self.rank())

    @property
    def ndims(self) -> int:
        return len(self._dims)

    @property
    def dims(self) -> tuple[int, ...]:
        return self._dims

    @property
    def periods(self) -> tuple[bool, ...]:
        return self._periods

    def cart_rank(self, coords: Sequence[int]) -> int:
        """Row-major rank of *coords*; periodic dims wrap."""
        if len(coords) != self.ndims:
            raise TopologyError(f"expected {self.ndims} coordinates")
        rank = 0
        for dim, period, c in zip(self._dims, self._periods, coords):
            if period:
                c %= dim
            elif not (0 <= c < dim):
                raise TopologyError(f"coordinate {c} outside non-periodic dim {dim}")
            rank = rank * dim + c
        return rank

    def coords(self, rank: int) -> tuple[int, ...]:
        """Coordinates of *rank* (MPI_Cart_coords)."""
        if not (0 <= rank < self.size()):
            raise TopologyError(f"rank {rank} outside topology of {self.size()}")
        out = []
        for dim in reversed(self._dims):
            out.append(rank % dim)
            rank //= dim
        return tuple(reversed(out))

    Get_topo = get_topo
    Get_coords = coords
    Get_cart_rank = cart_rank

    # ------------------------------------------------------------------
    # movement

    def shift(self, direction: int, disp: int) -> tuple[int, int]:
        """(source, dest) ranks for a shift (MPI_Cart_shift).

        Off-grid neighbours in non-periodic dimensions come back as
        ``UNDEFINED`` (MPI_PROC_NULL semantics).
        """
        if not (0 <= direction < self.ndims):
            raise TopologyError(f"direction {direction} outside {self.ndims} dims")
        me = list(self.coords(self.rank()))
        dim = self._dims[direction]
        period = self._periods[direction]

        def neighbour(offset: int) -> int:
            c = me[direction] + offset
            if period:
                c %= dim
            elif not (0 <= c < dim):
                return UNDEFINED
            coords = list(me)
            coords[direction] = c
            return self.cart_rank(coords)

        return neighbour(-disp), neighbour(disp)

    Shift = shift

    def sub(self, remain_dims: Sequence[bool]) -> "CartComm":
        """Slice the grid into sub-grids (MPI_Cart_sub)."""
        if len(remain_dims) != self.ndims:
            raise TopologyError("remain_dims must name every dimension")
        me = self.coords(self.rank())
        # Colour = coordinates in the dropped dimensions.
        color = 0
        for dim, keep, c in zip(self._dims, remain_dims, me):
            if not keep:
                color = color * dim + c
        sub_dims = [d for d, keep in zip(self._dims, remain_dims) if keep]
        sub_periods = [p for p, keep in zip(self._periods, remain_dims) if keep]
        flat = self.split(color, self.rank())
        assert flat is not None
        return CartComm(
            flat._devcomm,
            flat.group(),
            flat.contexts,
            pool=flat._pool,
            env=flat._env,
            context_counter=flat._context_counter,
            dims=sub_dims if sub_dims else [1],
            periods=sub_periods if sub_periods else [False],
        )

    Sub = sub
