"""Persistent communication requests (MPI-1 ``Send_init`` family).

A persistent request captures a communication's arguments once and can
be started many times — the classic optimization for iterative codes
(halo exchanges, the paper's Gadget-2 port being a prime candidate).
MPJ Express inherits these from the mpijava 1.2 API, which mirrors
MPI-1: ``Send_init`` / ``Bsend_init`` / ``Ssend_init`` / ``Rsend_init``
/ ``Recv_init`` produce inactive :class:`Prequest` objects; ``start``
activates one round; completion (wait/test) returns the request to the
inactive state rather than freeing it.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.mpi.exceptions import MPIException
from repro.mpi.request import MPIRequest
from repro.mpi.status import MPIStatus


class Prequest:
    """A persistent point-to-point request.

    Created inactive.  ``start()`` initiates one transfer; ``wait()``
    or a successful ``test()`` completes that transfer and deactivates
    the request, ready for the next ``start()``.
    """

    def __init__(self, comm: Any, kind: str, args: tuple, mode: str = "standard") -> None:
        self._comm = comm
        self._kind = kind  # "send" | "recv"
        self._args = args
        self._mode = mode
        self._active: Optional[MPIRequest] = None
        self._freed = False

    # ------------------------------------------------------------------

    @property
    def active(self) -> bool:
        return self._active is not None

    def start(self) -> "Prequest":
        """Activate one round of the captured communication."""
        if self._freed:
            raise MPIException("start() on a freed persistent request")
        if self._active is not None:
            raise MPIException(
                "start() on an already-active persistent request (complete "
                "the previous round with wait/test first)"
            )
        if self._kind == "send":
            buf, offset, count, datatype, dest, tag = self._args
            self._active = self._comm.Isend(
                buf, offset, count, datatype, dest, tag, mode=self._mode
            )
        else:
            buf, offset, count, datatype, source, tag = self._args
            self._active = self._comm.Irecv(buf, offset, count, datatype, source, tag)
        return self

    Start = start

    def wait(self, timeout: Optional[float] = None) -> MPIStatus:
        """Complete the active round and deactivate."""
        if self._active is None:
            raise MPIException("wait() on an inactive persistent request")
        status = self._active.wait(timeout=timeout)
        self._active = None
        return status

    def test(self) -> Optional[MPIStatus]:
        """Non-blocking completion check; deactivates on success."""
        if self._active is None:
            raise MPIException("test() on an inactive persistent request")
        status = self._active.test()
        if status is not None:
            self._active = None
        return status

    Wait = wait
    Test = test

    def free(self) -> None:
        """Release the request; it may not be started again."""
        if self._active is not None:
            raise MPIException("free() on an active persistent request")
        self._freed = True

    Free = free

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "freed" if self._freed else ("active" if self.active else "inactive")
        return f"Prequest({self._kind}, {state})"


def startall(requests: list[Prequest]) -> None:
    """Start every request in the list (MPI_Startall)."""
    for r in requests:
        r.start()


def waitall_persistent(requests: list[Prequest], timeout: Optional[float] = None) -> list[MPIStatus]:
    """Wait for every active persistent request; statuses in order."""
    return [r.wait(timeout=timeout) for r in requests]


Startall = startall
