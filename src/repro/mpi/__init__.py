"""repro.mpi — the MPI-like API level (mpijava 1.2 semantics, Python spellings).

This package is the top of the paper's Fig. 1 stack: the high level
(collectives) and base level (point-to-point) of an MPI binding,
implemented over mpjdev/xdev.

Quick use (with the SPMD launcher)::

    from repro.runtime.launcher import run_spmd
    from repro import mpi

    def main(env):
        comm = env.COMM_WORLD
        if comm.rank() == 0:
            comm.send({"hello": comm.size()}, dest=1, tag=0)
        elif comm.rank() == 1:
            print(comm.recv(source=0, tag=0))

    run_spmd(main, nprocs=2)

Wildcards, datatypes, reduction ops and thread-level constants are all
re-exported here, mpijava-style (``mpi.ANY_SOURCE``, ``mpi.INT``,
``mpi.SUM``, ``mpi.THREAD_MULTIPLE``...).
"""

from repro.xdev.constants import ANY_SOURCE, ANY_TAG

from repro.mpi.exceptions import (
    CommunicatorError,
    CountMismatchError,
    DatatypeError,
    InvalidRankError,
    InvalidTagError,
    MPIException,
    TopologyError,
)
from repro.mpi.datatype import (
    BOOLEAN,
    BYTE,
    CHAR,
    ContiguousType,
    Datatype,
    DOUBLE,
    FLOAT,
    INT,
    IndexedType,
    LONG,
    OBJECT,
    SHORT,
    StructType,
    VectorType,
    datatype_for,
)
from repro.mpi.op import (
    BAND,
    BOR,
    BXOR,
    LAND,
    LOR,
    LXOR,
    MAX,
    MAXLOC,
    MIN,
    MINLOC,
    Op,
    PROD,
    SUM,
)
from repro.mpi.group import Group, IDENT, SIMILAR, UNDEFINED, UNEQUAL
from repro.mpi.status import MPIStatus
from repro.mpi.request import (
    CompletedMPIRequest,
    MPIRequest,
    testall,
    testany,
    testsome,
    waitall,
    waitany,
    waitsome,
)
from repro.mpi.comm import Comm
from repro.mpi.intracomm import ContextCounter, Intracomm
from repro.mpi.intercomm import Intercomm
from repro.mpi.cartcomm import CartComm, dims_create
from repro.mpi.graphcomm import GraphComm
from repro.mpi.environment import (
    MPJEnvironment,
    THREAD_FUNNELED,
    THREAD_MULTIPLE,
    THREAD_SERIALIZED,
    THREAD_SINGLE,
)
from repro.mpi.persistent import Prequest, startall, waitall_persistent
from repro.mpi.packing import PACKED, Packer, Unpacker, pack_size
from repro.mpi.attributes import create_keyval, free_keyval
from repro.mpi.nbc import (
    NBCRequest,
    iallgather,
    iallreduce,
    ibarrier,
    ibcast,
    igather_objects,
)

#: MPI_PROC_NULL analogue used by Cart shift at open boundaries.
PROC_NULL = UNDEFINED

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BAND",
    "BOOLEAN",
    "BOR",
    "BXOR",
    "BYTE",
    "CHAR",
    "CartComm",
    "Comm",
    "CommunicatorError",
    "CompletedMPIRequest",
    "ContextCounter",
    "ContiguousType",
    "CountMismatchError",
    "create_keyval",
    "free_keyval",
    "Datatype",
    "DatatypeError",
    "DOUBLE",
    "FLOAT",
    "GraphComm",
    "Group",
    "IDENT",
    "INT",
    "IndexedType",
    "Intercomm",
    "Intracomm",
    "InvalidRankError",
    "InvalidTagError",
    "LAND",
    "LONG",
    "LOR",
    "LXOR",
    "MAX",
    "MAXLOC",
    "MIN",
    "MINLOC",
    "MPIException",
    "MPIRequest",
    "MPIStatus",
    "MPJEnvironment",
    "NBCRequest",
    "OBJECT",
    "iallgather",
    "iallreduce",
    "ibarrier",
    "ibcast",
    "igather_objects",
    "Op",
    "PACKED",
    "Packer",
    "Prequest",
    "Unpacker",
    "pack_size",
    "startall",
    "waitall_persistent",
    "PROC_NULL",
    "PROD",
    "SHORT",
    "SIMILAR",
    "StructType",
    "SUM",
    "THREAD_FUNNELED",
    "THREAD_MULTIPLE",
    "THREAD_SERIALIZED",
    "THREAD_SINGLE",
    "TopologyError",
    "UNDEFINED",
    "UNEQUAL",
    "VectorType",
    "datatype_for",
    "dims_create",
    "testall",
    "testany",
    "testsome",
    "waitall",
    "waitany",
    "waitsome",
]
