"""MPI datatypes, including the four derived kinds (paper Section IV-C).

"There are four types of derived datatypes; contiguous, indexed,
vector, and struct. ... Imagine a 4x4 matrix stored in a float array.
It is possible to send first column of this matrix using the vector
datatype, by specifying a blocklength of 1 and stride of 4 ...  When
the send method is called, the first column is copied to a contiguous
area, which is used for the actual send.  This is made possible in MPJ
Express by our buffering API mpjbuf."

That is exactly the implementation here: every datatype knows how to
**pack** a selection of a user array into a
:class:`~repro.buffer.Buffer` (one contiguous static section — numpy
fancy indexing does the gather) and how to **unpack** a received
buffer back into a user array (the scatter).

Conventions
-----------
* ``data`` is a numpy array for primitive-based types (any shape; it
  is addressed through its flat view) or a mutable sequence for
  :data:`OBJECT`.
* ``offset`` is measured in *base elements* (for OBJECT: list items).
* ``count`` is measured in elements of the datatype itself; element
  ``k`` of a derived type covers base indices
  ``offset + k * extent + pattern``.
"""

from __future__ import annotations

import abc
from typing import Any, Sequence

import numpy as np

from repro.buffer import Buffer, SectionType, dtype_for
from repro.mpi.exceptions import CountMismatchError, DatatypeError


class Datatype(abc.ABC):
    """Base class: a recipe for moving data through a Buffer."""

    #: numpy dtype of the underlying primitive, None for OBJECT.
    base_dtype: np.dtype | None = None
    #: span of one element in base-element units (MPI extent).
    extent: int = 1
    #: number of base elements actually transferred per element.
    block_count: int = 1

    # ------------------------------------------------------------------
    # core contract

    @abc.abstractmethod
    def pack(self, buf: Buffer, data: Any, offset: int, count: int) -> None:
        """Gather *count* elements starting at *offset* into *buf*."""

    @abc.abstractmethod
    def unpack(self, buf: Buffer, data: Any, offset: int, count: int) -> int:
        """Scatter up to *count* elements from *buf* into *data*.

        Returns the number of datatype elements actually received.
        Raises :class:`CountMismatchError` if the message holds more
        elements than *count*.
        """

    def packed_size(self, count: int) -> int:
        """Bytes of static-section payload for *count* elements."""
        if self.base_dtype is None:
            return 0
        return count * self.block_count * self.base_dtype.itemsize

    # ------------------------------------------------------------------
    # mpijava-style queries

    def get_size(self) -> int:
        """Bytes transferred per element (MPI ``Type_size``)."""
        return self.packed_size(1)

    def get_extent(self) -> int:
        """Span per element in base elements (MPI ``Type_extent``)."""
        return self.extent

    Size = get_size
    Extent = get_extent

    # ------------------------------------------------------------------
    # derived-type constructors (mpijava spells these on Datatype)

    def contiguous(self, count: int) -> "ContiguousType":
        return ContiguousType(self, count)

    def vector(self, count: int, blocklength: int, stride: int) -> "VectorType":
        return VectorType(self, count, blocklength, stride)

    def indexed(
        self, blocklengths: Sequence[int], displacements: Sequence[int]
    ) -> "IndexedType":
        return IndexedType(self, blocklengths, displacements)

    Contiguous = contiguous
    Vector = vector
    Indexed = indexed


def _flat(data: Any, dtype: np.dtype) -> np.ndarray:
    arr = data if isinstance(data, np.ndarray) else np.asarray(data, dtype=dtype)
    if arr.dtype != dtype:
        # Unsigned arrays ride the same-width signed datatype: reinterpret
        # in place (possible only for contiguous arrays — a view must not
        # silently become a copy or unpack would write into a temporary).
        same_width_int = (
            arr.dtype.itemsize == dtype.itemsize
            and arr.dtype.kind in "ui"
            and dtype.kind in "ui"
        )
        if same_width_int and arr.flags.c_contiguous:
            arr = arr.view(dtype)
        else:
            raise DatatypeError(
                f"array dtype {arr.dtype} does not match datatype {dtype}"
            )
    return arr.reshape(-1)


class BasicType(Datatype):
    """A primitive type bound to one mpjbuf section type."""

    def __init__(self, section_type: SectionType, name: str) -> None:
        self.section_type = section_type
        self.base_dtype = dtype_for(section_type)
        self.name = name
        self.extent = 1
        self.block_count = 1

    def pack(self, buf: Buffer, data: Any, offset: int, count: int) -> None:
        flat = _flat(data, self.base_dtype)
        if offset < 0 or offset + count > flat.size:
            raise DatatypeError(
                f"pack window [{offset}, {offset + count}) exceeds array of {flat.size}"
            )
        buf.write(flat[offset : offset + count], self.section_type)

    def unpack(self, buf: Buffer, data: Any, offset: int, count: int) -> int:
        hdr = buf.read_section_header()
        if hdr.type != self.section_type:
            raise DatatypeError(
                f"message section is {hdr.type.name}, receive posted {self.name}"
            )
        if hdr.count > count:
            raise CountMismatchError(
                f"message has {hdr.count} elements, receive posted {count}"
            )
        flat = _flat(data, self.base_dtype)
        if offset + hdr.count > flat.size:
            raise CountMismatchError(
                f"unpack window [{offset}, {offset + hdr.count}) exceeds "
                f"array of {flat.size}"
            )
        received = buf.read(hdr.count, self.base_dtype)
        flat[offset : offset + hdr.count] = received
        return hdr.count

    def __repr__(self) -> str:
        return f"Datatype({self.name})"


class ObjectType(Datatype):
    """Arbitrary Python objects via the buffer's dynamic section.

    The paper: "It is possible to achieve some of the same goals by
    communicating Java objects, but there are concerns about the cost
    of object serialization — MPJ Express relies on JDK's default
    serialization."  We rely on pickle.
    """

    base_dtype = None
    name = "OBJECT"

    def pack(self, buf: Buffer, data: Any, offset: int, count: int) -> None:
        if offset < 0 or offset + count > len(data):
            raise DatatypeError(
                f"pack window [{offset}, {offset + count}) exceeds sequence "
                f"of {len(data)}"
            )
        for i in range(count):
            buf.write_object(data[offset + i])

    def unpack(self, buf: Buffer, data: Any, offset: int, count: int) -> int:
        received = 0
        while buf.has_objects() and received < count:
            data[offset + received] = buf.read_object()
            received += 1
        if buf.has_objects():
            raise CountMismatchError(
                f"message holds more than the posted {count} objects"
            )
        return received

    def __repr__(self) -> str:
        return "Datatype(OBJECT)"


class _IndexPatternType(Datatype):
    """Shared machinery for derived types defined by an index pattern.

    Subclasses provide ``pattern`` — base-element indices of ONE
    element of the derived type relative to its start — and the
    extent.  Packing gathers ``offset + k*extent + pattern`` for each
    ``k`` with one fancy-indexing operation.
    """

    def __init__(self, base: Datatype, pattern: np.ndarray, extent: int) -> None:
        if isinstance(base, ObjectType):
            raise DatatypeError("derived datatypes over OBJECT are not supported")
        if not isinstance(base, BasicType):
            # Derived-over-derived: flatten by composing index patterns.
            if not isinstance(base, _IndexPatternType):
                raise DatatypeError(f"cannot derive from {base!r}")
            inner = base.pattern
            pattern = (pattern[:, None] * base.extent + inner[None, :]).reshape(-1)
            extent = extent * base.extent
            base = base.basic
        self.basic: BasicType = base  # type: ignore[assignment]
        self.base_dtype = base.base_dtype
        self.pattern = np.asarray(pattern, dtype=np.intp)
        if self.pattern.size == 0:
            raise DatatypeError("derived datatype with empty pattern")
        if self.pattern.min() < 0:
            raise DatatypeError("derived datatype pattern has negative indices")
        self.extent = int(extent)
        self.block_count = int(self.pattern.size)

    def _indices(self, offset: int, count: int) -> np.ndarray:
        starts = offset + np.arange(count, dtype=np.intp) * self.extent
        return (starts[:, None] + self.pattern[None, :]).reshape(-1)

    def pack(self, buf: Buffer, data: Any, offset: int, count: int) -> None:
        flat = _flat(data, self.base_dtype)
        idx = self._indices(offset, count)
        if count > 0 and (idx.max() >= flat.size):
            raise DatatypeError(
                f"pack pattern reaches index {int(idx.max())} beyond array "
                f"of {flat.size}"
            )
        # The gather: non-contiguous user data → one contiguous section
        # (the paper's "copied to a contiguous area").
        buf.write(flat[idx], self.basic.section_type)

    def unpack(self, buf: Buffer, data: Any, offset: int, count: int) -> int:
        hdr = buf.read_section_header()
        if hdr.type != self.basic.section_type:
            raise DatatypeError(
                f"message section is {hdr.type.name}, receive posted "
                f"{self.basic.name}-derived"
            )
        if hdr.count % self.block_count != 0:
            raise CountMismatchError(
                f"message of {hdr.count} base elements is not a whole number "
                f"of derived elements ({self.block_count} each)"
            )
        nelems = hdr.count // self.block_count
        if nelems > count:
            raise CountMismatchError(
                f"message has {nelems} elements, receive posted {count}"
            )
        flat = _flat(data, self.base_dtype)
        idx = self._indices(offset, nelems)
        if nelems > 0 and idx.max() >= flat.size:
            raise CountMismatchError(
                f"unpack pattern reaches index {int(idx.max())} beyond array "
                f"of {flat.size}"
            )
        received = buf.read(hdr.count, self.base_dtype)
        flat[idx] = received  # the scatter
        return nelems


class ContiguousType(_IndexPatternType):
    """*count* consecutive base elements per element."""

    def __init__(self, base: Datatype, count: int) -> None:
        if count < 1:
            raise DatatypeError("contiguous count must be >= 1")
        super().__init__(base, np.arange(count, dtype=np.intp), extent=count)
        self.count = count

    def __repr__(self) -> str:
        return f"Contiguous({self.basic.name}, {self.count})"


class VectorType(_IndexPatternType):
    """*count* blocks of *blocklength*, starts *stride* apart.

    The paper's matrix-column example is
    ``DOUBLE.vector(count=4, blocklength=1, stride=4)``.
    """

    def __init__(self, base: Datatype, count: int, blocklength: int, stride: int) -> None:
        if count < 1 or blocklength < 1:
            raise DatatypeError("vector count and blocklength must be >= 1")
        if stride < 1:
            raise DatatypeError("vector stride must be >= 1")
        block = np.arange(blocklength, dtype=np.intp)
        starts = np.arange(count, dtype=np.intp) * stride
        pattern = (starts[:, None] + block[None, :]).reshape(-1)
        extent = (count - 1) * stride + blocklength
        super().__init__(base, pattern, extent=extent)
        self.count, self.blocklength, self.stride = count, blocklength, stride

    def __repr__(self) -> str:
        return (
            f"Vector({self.basic.name}, count={self.count}, "
            f"blocklength={self.blocklength}, stride={self.stride})"
        )


class IndexedType(_IndexPatternType):
    """Blocks of varying length at explicit displacements."""

    def __init__(
        self,
        base: Datatype,
        blocklengths: Sequence[int],
        displacements: Sequence[int],
    ) -> None:
        if len(blocklengths) != len(displacements):
            raise DatatypeError(
                "blocklengths and displacements must have equal length"
            )
        if len(blocklengths) == 0:
            raise DatatypeError("indexed datatype needs at least one block")
        pieces = []
        for bl, disp in zip(blocklengths, displacements):
            if bl < 1 or disp < 0:
                raise DatatypeError(
                    f"illegal indexed block (length {bl}, displacement {disp})"
                )
            pieces.append(disp + np.arange(bl, dtype=np.intp))
        pattern = np.concatenate(pieces)
        if len(np.unique(pattern)) != len(pattern):
            raise DatatypeError("indexed blocks overlap")
        extent = int(pattern.max()) + 1
        super().__init__(base, pattern, extent=extent)
        self.blocklengths = list(blocklengths)
        self.displacements = list(displacements)

    def __repr__(self) -> str:
        return (
            f"Indexed({self.basic.name}, blocklengths={self.blocklengths}, "
            f"displacements={self.displacements})"
        )


class StructType(Datatype):
    """Heterogeneous records via a numpy structured dtype.

    MPI's ``Type_struct`` describes C structs with byte displacements;
    the natural Python carrier for the same layout is a numpy
    structured array, so this type packs/unpacks whole records of the
    given structured dtype (transported as a raw byte section — both
    ends agree on the layout, and the dtype is forced little-endian
    fixed-width for wire stability).
    """

    def __init__(self, dtype: np.dtype) -> None:
        dtype = np.dtype(dtype)
        if dtype.fields is None:
            raise DatatypeError("StructType needs a structured numpy dtype")
        self.struct_dtype = dtype.newbyteorder("<")
        self.base_dtype = np.dtype("<i1")
        self.extent = 1  # offsets are in records
        self.block_count = self.struct_dtype.itemsize

    def pack(self, buf: Buffer, data: Any, offset: int, count: int) -> None:
        arr = np.asarray(data, dtype=self.struct_dtype).reshape(-1)
        if offset < 0 or offset + count > arr.size:
            raise DatatypeError(
                f"pack window [{offset}, {offset + count}) exceeds array of {arr.size}"
            )
        raw = np.ascontiguousarray(arr[offset : offset + count]).view("<i1").reshape(-1)
        buf.write(raw, SectionType.BYTE)

    def unpack(self, buf: Buffer, data: Any, offset: int, count: int) -> int:
        hdr = buf.read_section_header()
        if hdr.type != SectionType.BYTE:
            raise DatatypeError("struct message must be a BYTE section")
        if hdr.count % self.block_count != 0:
            raise CountMismatchError(
                f"{hdr.count} bytes is not a whole number of records of "
                f"{self.block_count} bytes"
            )
        nrec = hdr.count // self.block_count
        if nrec > count:
            raise CountMismatchError(
                f"message has {nrec} records, receive posted {count}"
            )
        arr = data.reshape(-1)
        if arr.dtype != self.struct_dtype:
            raise DatatypeError(
                f"array dtype {arr.dtype} does not match struct {self.struct_dtype}"
            )
        raw = buf.read(hdr.count, np.dtype("<i1"))
        arr[offset : offset + nrec] = raw.view(self.struct_dtype)
        return nrec

    def __repr__(self) -> str:
        return f"Struct({self.struct_dtype})"


# ----------------------------------------------------------------------
# predefined datatypes (mpijava's MPI.INT etc.)

BYTE = BasicType(SectionType.BYTE, "BYTE")
BOOLEAN = BasicType(SectionType.BOOLEAN, "BOOLEAN")
CHAR = BasicType(SectionType.CHAR, "CHAR")
SHORT = BasicType(SectionType.SHORT, "SHORT")
INT = BasicType(SectionType.INT, "INT")
LONG = BasicType(SectionType.LONG, "LONG")
FLOAT = BasicType(SectionType.FLOAT, "FLOAT")
DOUBLE = BasicType(SectionType.DOUBLE, "DOUBLE")
OBJECT = ObjectType()

#: Map numpy dtypes to the matching basic datatype (mpi4py-style
#: automatic discovery for ``Send(array, ...)`` without a datatype).
_BY_DTYPE: dict[Any, BasicType] = {
    np.dtype("int8"): BYTE,
    np.dtype("uint8"): BYTE,
    np.dtype("bool"): BOOLEAN,
    np.dtype("uint16"): CHAR,
    np.dtype("int16"): SHORT,
    np.dtype("int32"): INT,
    np.dtype("int64"): LONG,
    np.dtype("float32"): FLOAT,
    np.dtype("float64"): DOUBLE,
}


def datatype_for(array: np.ndarray) -> BasicType:
    """Infer the basic datatype transporting *array* (by dtype)."""
    dtype = np.dtype(array.dtype).newbyteorder("=")
    dt = _BY_DTYPE.get(dtype)
    if dt is None and dtype.kind == "u":
        # Unsigned widths >1 byte travel as the same-width signed type
        # (Java has no unsigned primitives); bit patterns are preserved.
        dt = _BY_DTYPE.get(np.dtype(f"int{dtype.itemsize * 8}"))
    if dt is None:
        raise DatatypeError(f"no predefined datatype for dtype {array.dtype}")
    return dt
