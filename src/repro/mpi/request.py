"""MPI-level requests: completion plus receive-side unpacking.

An :class:`MPIRequest` wraps the mpjdev request and a *finisher* — the
step that runs on the waiting thread when the operation completes.
For receives the finisher unpacks the arrived buffer into the user
array with the posted datatype and computes the element count; for
sends it releases the packed buffer back to its pool.

``Waitany`` delegates to the peek()-based machinery in
:mod:`repro.mpjdev.waitany` — no polling (paper Section IV-E.1).
``Waitall``/``Waitsome``/``Testall``/... are built from these
primitives in the usual MPI shapes.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Sequence

from repro.mpi.exceptions import MPIException
from repro.mpi.status import MPIStatus
from repro.mpjdev.comm import RankRequest
from repro.mpjdev.request import RequestFailedError
from repro.mpjdev.request import Status as DevStatus
from repro.mpjdev.waitany import waitany as dev_waitany


class MPIRequest:
    """A pending MPI operation.

    *cleanup* runs exactly once if the device-level request **fails**
    (``RequestFailedError``): on that path the finisher — which
    normally returns the packed message to its pool — never executes,
    so without it every failed request leaked its pooled buffer.
    """

    def __init__(
        self,
        inner: RankRequest,
        finisher: Callable[[DevStatus], MPIStatus],
        device=None,
        cleanup: Optional[Callable[[], None]] = None,
    ) -> None:
        self.inner = inner
        self._finisher = finisher
        self._device = device
        self._cleanup = cleanup
        self._lock = threading.Lock()
        self._result: Optional[MPIStatus] = None

    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.inner.done

    def _finish(self, dev_status: DevStatus) -> MPIStatus:
        """Run the finisher exactly once (unpacking is not idempotent)."""
        with self._lock:
            if self._result is None:
                self._result = self._finisher(dev_status)
            return self._result

    def _on_failure(self) -> None:
        """Release resources the finisher would have owned.

        Runs at most once, and never after a successful finish (a
        request cannot both complete and fail).  Timeouts do NOT come
        through here — a timed-out request is still pending and its
        buffer still in flight.
        """
        with self._lock:
            if self._result is not None or self._cleanup is None:
                return
            cleanup, self._cleanup = self._cleanup, None
        cleanup()

    def wait(self, timeout: Optional[float] = None) -> MPIStatus:
        """Block until complete; returns the MPI status."""
        try:
            dev_status = self.inner.wait(timeout=timeout)
        except RequestFailedError:
            self._on_failure()
            raise
        return self._finish(dev_status)

    def test(self) -> Optional[MPIStatus]:
        """Non-blocking completion check."""
        try:
            dev_status = self.inner.test()
        except RequestFailedError:
            self._on_failure()
            raise
        return self._finish(dev_status) if dev_status is not None else None

    # mpijava spellings
    Wait = wait
    Test = test

    def is_null(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MPIRequest({self.inner!r})"


class CompletedMPIRequest(MPIRequest):
    """A request born complete (zero-count operations, self-copies)."""

    def __init__(self, status: Optional[MPIStatus] = None) -> None:
        self._status = status if status is not None else MPIStatus(DevStatus())
        self._lock = threading.Lock()
        self._result = self._status
        self._cleanup = None
        self.inner = None  # type: ignore[assignment]
        self._device = None

    @property
    def done(self) -> bool:
        return True

    def wait(self, timeout: Optional[float] = None) -> MPIStatus:
        return self._status

    def test(self) -> Optional[MPIStatus]:
        return self._status

    Wait = wait
    Test = test


# ----------------------------------------------------------------------
# request-array operations


def waitall(requests: Sequence[MPIRequest], timeout: Optional[float] = None) -> list[MPIStatus]:
    """Wait for every request; statuses in request order."""
    return [r.wait(timeout=timeout) for r in requests]


def waitany(
    requests: Sequence[MPIRequest], timeout: Optional[float] = None
) -> tuple[int, MPIStatus]:
    """Wait until any request completes; returns (index, status).

    Uses the device-level peek() machinery, never a poll loop.
    """
    if not requests:
        raise MPIException("Waitany over an empty request array")
    # Already-complete requests (including CompletedMPIRequest) win
    # immediately — mirrors the paper's initial Test() sweep.
    for i, r in enumerate(requests):
        status = r.test()
        if status is not None:
            status.index = i
            return i, status
    device = next(
        (r._device for r in requests if r._device is not None), None
    )
    if device is None:
        raise MPIException("Waitany needs at least one device-backed request")
    dev_requests = [r.inner.inner for r in requests]
    idx, _dev_status = dev_waitany(device, dev_requests, timeout=timeout)
    status = requests[idx].wait()
    status.index = idx
    return idx, status


def waitsome(
    requests: Sequence[MPIRequest], timeout: Optional[float] = None
) -> list[tuple[int, MPIStatus]]:
    """Wait until at least one completes; return all completed (index, status)."""
    idx, status = waitany(requests, timeout=timeout)
    out = [(idx, status)]
    for i, r in enumerate(requests):
        if i == idx:
            continue
        s = r.test()
        if s is not None:
            s.index = i
            out.append((i, s))
    return out


def testall(requests: Sequence[MPIRequest]) -> Optional[list[MPIStatus]]:
    """Statuses if every request is complete, else None."""
    statuses = []
    for r in requests:
        s = r.test()
        if s is None:
            return None
        statuses.append(s)
    return statuses


def testany(requests: Sequence[MPIRequest]) -> Optional[tuple[int, MPIStatus]]:
    """(index, status) of some completed request, else None."""
    for i, r in enumerate(requests):
        s = r.test()
        if s is not None:
            s.index = i
            return i, s
    return None


def testsome(requests: Sequence[MPIRequest]) -> list[tuple[int, MPIStatus]]:
    """All currently completed (index, status) pairs (possibly empty)."""
    out = []
    for i, r in enumerate(requests):
        s = r.test()
        if s is not None:
            s.index = i
            out.append((i, s))
    return out


# mpijava spellings
Waitall = waitall
Waitany = waitany
Waitsome = waitsome
Testall = testall
Testany = testany
Testsome = testsome
