"""Intercommunicators (MPI-1 inter-group communication).

Another of the higher-level MPI features the paper lists as missing in
MPJ/Ibis and present in MPJ Express (Section II).  Construction follows
MPI_Intercomm_create: the two groups' *leaders* talk over a peer
communicator, exchange membership, and agree on fresh contexts;
everything is then broadcast within each local group.

Point-to-point ranks on an intercommunicator address the *remote*
group, so the devcomm used for traffic is built over the remote pid
table (with this process marked as a non-member).

``merge`` turns the intercommunicator into an ordinary Intracomm over
the union of the groups; the context pair for the merged communicator
is pre-allocated at construction time so no extra cross-group
agreement round is needed.
"""

from __future__ import annotations


import numpy as np

from repro.mpi import op as ops
from repro.mpi.comm import Comm, TAG_INTERCOMM
from repro.mpi.exceptions import CommunicatorError
from repro.mpi.group import Group
from repro.mpi.intracomm import Intracomm
from repro.mpjdev.comm import MPJDevComm


class Intercomm(Comm):
    """A communicator connecting two disjoint groups."""

    def __init__(
        self,
        remote_devcomm: MPJDevComm,
        local_comm: Intracomm,
        local_group: Group,
        remote_group: Group,
        contexts: tuple[int, int],
        merge_contexts: tuple[int, int],
        low_group: bool,
    ) -> None:
        super().__init__(
            remote_devcomm,
            local_group,
            contexts,
            pool=local_comm._pool,
            env=local_comm._env,
        )
        self._local_comm = local_comm
        self._remote_group = remote_group
        self._merge_contexts = merge_contexts
        self._low_group = low_group

    # ------------------------------------------------------------------
    # construction

    @staticmethod
    def _construct(
        local_comm: Intracomm,
        local_leader: int,
        peer_comm: Comm,
        remote_leader: int,
        tag: int,
    ) -> "Intercomm":
        rank = local_comm.rank()
        am_leader = rank == local_leader

        # Each side agrees internally on its next free context id.
        mine = np.array([local_comm._context_counter.value], dtype=np.int64)
        local_max = np.empty(1, dtype=np.int64)
        local_comm.Allreduce(mine, 0, local_max, 0, 1, None, ops.MAX)

        # Leaders exchange (context proposal, membership) over the peer
        # communicator, then broadcast the remote side's data locally.
        if am_leader:
            payload = {
                "context": int(local_max[0]),
                "pids": list(local_comm.group().pids),
            }
            send_req = peer_comm.isend(payload, remote_leader, tag)
            remote_payload = peer_comm.recv(source=remote_leader, tag=tag)
            send_req.wait()
        else:
            remote_payload = None
        remote_payload = local_comm.bcast(remote_payload, root=local_leader)

        agreed = max(int(local_max[0]), int(remote_payload["context"]))
        # Four ids: (pt2pt, coll) for the intercomm + a pre-allocated
        # pair for a later merge().
        contexts = (agreed, agreed + 1)
        merge_contexts = (agreed + 2, agreed + 3)
        local_comm._context_counter.bump_to(agreed + 4)

        remote_pids = list(remote_payload["pids"])
        local_pids = list(local_comm.group().pids)
        overlap = {p.uid for p in local_pids} & {p.uid for p in remote_pids}
        if overlap:
            raise CommunicatorError(
                f"intercommunicator groups overlap (uids {sorted(overlap)})"
            )
        my_pid = local_comm.group().pid(rank)
        local_group = Group(local_pids, my_uid=my_pid.uid)
        remote_group = Group(remote_pids, my_uid=my_pid.uid)
        # The remote pids carry listen addresses the bootstrap never
        # announced here; teach the transport so lazy dials can reach
        # them.  Address-table growth only — nothing connects until
        # intercomm traffic actually flows.
        extend = getattr(local_comm._devcomm.device, "extend_peers", None)
        if extend is not None:
            extend(remote_pids)
        remote_devcomm = MPJDevComm(
            local_comm._devcomm.device, remote_pids, MPJDevComm.NOT_A_MEMBER
        )
        # Deterministic tie-break for merge ordering: the group whose
        # first pid has the smaller uid is the "low" group.
        low_group = local_pids[0].uid < remote_pids[0].uid
        return Intercomm(
            remote_devcomm,
            local_comm,
            local_group,
            remote_group,
            contexts,
            merge_contexts,
            low_group,
        )

    # ------------------------------------------------------------------
    # identity — local vs remote

    def rank(self) -> int:
        """This process's rank in its *local* group."""
        return self._local_comm.rank()

    def size(self) -> int:
        """Size of the *local* group."""
        return self._local_comm.size()

    Rank = rank
    Size = size
    Get_rank = rank
    Get_size = size

    def remote_size(self) -> int:
        return self._remote_group.size()

    def remote_group(self) -> Group:
        return self._remote_group

    Remote_size = remote_size
    Remote_group = remote_group

    def is_inter(self) -> bool:
        return True

    @property
    def local_comm(self) -> Intracomm:
        """The intracommunicator over this side's group."""
        return self._local_comm

    # Point-to-point methods are inherited from Comm: because the
    # devcomm is built over the remote pid table, dest/source ranks
    # naturally address the remote group, as MPI specifies.

    # ------------------------------------------------------------------
    # merge

    def merge(self, high: bool = False) -> Intracomm:
        """Union Intracomm of both groups (MPI_Intercomm_merge).

        The group that passes ``high=False`` comes first; both sides
        must pass complementary flags (as in MPI).  If both sides pass
        the same flag, a deterministic uid-based order is used.
        """
        local_pids = list(self._group.pids)
        remote_pids = list(self._remote_group.pids)
        local_first = not high
        if high == self._exchange_high(high):
            # Same flag on both sides: fall back to the deterministic
            # low-group ordering fixed at construction.
            local_first = self._low_group
        ordered = local_pids + remote_pids if local_first else remote_pids + local_pids
        my_pid = self._group.pid(self.rank())
        merged_group = Group(ordered, my_uid=my_pid.uid)
        my_new_rank = merged_group.rank()

        device = self._local_comm._devcomm.device
        devcomm = MPJDevComm(device, ordered, my_new_rank)
        return Intracomm(
            devcomm,
            merged_group,
            self._merge_contexts,
            pool=self._pool,
            env=self._env,
            context_counter=self._local_comm._context_counter,
        )

    Merge = merge

    def _exchange_high(self, high: bool) -> bool:
        """Learn the remote side's ``high`` flag (leaders exchange)."""
        rank = self.rank()
        if rank == 0:
            send_req = self.isend(bool(high), 0, TAG_INTERCOMM)
            remote_high = self.recv(source=0, tag=TAG_INTERCOMM)
            send_req.wait()
        else:
            remote_high = None
        return bool(self._local_comm.bcast(remote_high, root=0))
