"""MPI-level Status: the mpjdev Status plus datatype-aware queries."""

from __future__ import annotations

from typing import Optional

from repro.mpi.datatype import Datatype
from repro.mpjdev.request import Status as DevStatus


class MPIStatus:
    """Result of a completed receive (or probe) at the MPI level.

    ``source`` and ``tag`` are communicator-rank / user-tag values;
    ``count`` is in elements of the receive's datatype (set after
    unpacking); ``index`` is filled by Waitany/Waitsome.
    """

    __slots__ = ("source", "tag", "count", "size", "index", "_dev")

    def __init__(self, dev_status: DevStatus, count: Optional[int] = None) -> None:
        self._dev = dev_status
        self.source: int = dev_status.source if isinstance(dev_status.source, int) else -1
        self.tag: int = dev_status.tag
        self.size: int = dev_status.size
        self.count: int = count if count is not None else dev_status.count
        self.index: int = -1

    # ------------------------------------------------------------------
    # mpijava-style accessors

    def get_source(self) -> int:
        return self.source

    def get_tag(self) -> int:
        return self.tag

    def get_count(self, datatype: Datatype) -> int:
        """Element count of the message in units of *datatype*.

        After a receive the exact unpacked count is recorded; for a
        probe the count is derived from the payload size (subtracting
        the 5-byte section header the static section carries).
        """
        if self.count:
            return self.count
        per_element = datatype.get_size()
        if per_element == 0:
            return 0
        payload = max(0, self.size - 5)
        return payload // per_element

    Get_source = get_source
    Get_tag = get_tag
    Get_count = get_count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MPIStatus(source={self.source}, tag={self.tag}, "
            f"count={self.count}, size={self.size})"
        )
