"""Deterministic synchronization helpers for concurrent tests.

``time.sleep(0.05)`` in a test is a guess about scheduling; it is both
slow (the guess must be generous) and flaky (the guess can be wrong).
:func:`wait_until` replaces the guess with the condition the sleep was
approximating, bounded by an explicit timeout.
"""

from __future__ import annotations

import time
from typing import Callable


def wait_until(
    predicate: Callable[[], bool],
    timeout: float = 5.0,
    interval: float = 0.001,
    message: str = "condition",
) -> None:
    """Poll *predicate* until it is true or *timeout* seconds elapse.

    Raises :class:`TimeoutError` naming *message* on expiry.  The poll
    interval is short because callers wait for in-process state — this
    is a test aid, not a production busy-wait.
    """
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise TimeoutError(f"timed out after {timeout}s waiting for {message}")
        time.sleep(interval)
