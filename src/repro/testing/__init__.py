"""Concurrency-torture harness: chaosdev, seeded scheduling, watchdog.

The correctness-tooling layer behind the paper's thread-safety claim.
Three cooperating pieces:

* :mod:`repro.testing.chaos` — ``chaosdev``, a wrapper Device that
  injects seeded, deterministic frame-level faults (delays, safe
  reordering, duplicated RTS/RTR, truncated payloads);
* :mod:`repro.testing.scheduler` — a seeded interleaving scheduler
  for smdev's per-rank frame queues, replaying delivery choices from
  a PRNG seed;
* :mod:`repro.testing.watchdog` — lock-order cycle detection over the
  engine's locks plus a stuck-progress watchdog with trace-integrated
  stall reports.

Plus :func:`repro.testing.sync.wait_until` for race-free test
synchronization and pytest fixtures in :mod:`repro.testing.fixtures`.
"""

from repro.testing.chaos import (
    ChaosConfig,
    ChaosDevice,
    ChaosEvent,
    ChaosTransport,
    SEED_ENV_VAR,
    seed_from_env,
)
from repro.testing.scheduler import (
    ScheduledInbox,
    SeededSchedule,
    make_scheduled_fabric,
)
from repro.testing.sync import wait_until
from repro.testing.watchdog import (
    InstrumentedLock,
    LockGraph,
    LockOrderViolation,
    ProgressWatchdog,
    instrument_engine,
)

__all__ = [
    "ChaosConfig",
    "ChaosDevice",
    "ChaosEvent",
    "ChaosTransport",
    "SEED_ENV_VAR",
    "seed_from_env",
    "ScheduledInbox",
    "SeededSchedule",
    "make_scheduled_fabric",
    "wait_until",
    "InstrumentedLock",
    "LockGraph",
    "LockOrderViolation",
    "ProgressWatchdog",
    "instrument_engine",
]
