"""chaosdev — seeded, deterministic frame-level fault injection.

The protocol engine's error paths (duplicate control frames, truncated
payloads, delayed and reordered delivery) are exercised by real
networks only by luck.  chaosdev exercises them on purpose: a wrapper
:class:`~repro.xdev.device.Device` (composable over smdev/niodev, like
:class:`repro.trace.TracingDevice`) swaps the engine's transport for a
:class:`ChaosTransport` that perturbs every outbound frame according
to a seeded plan.

Determinism is the point.  Every fault decision is drawn from a PRNG
keyed on ``(seed, frame content, occurrence number)`` — *not* on call
order — so the same seed produces the same per-frame decisions no
matter how threads interleave, and a failing run can be replayed with
``REPRO_CHAOS_SEED=<seed>``.

Fault safety rules (so chaos breaks implementations, not semantics):

* only RTS/RTR control frames are duplicated — the engine must reject
  the duplicates loudly (:class:`~repro.xdev.exceptions.DuplicateControlFrameError`);
* frames are reordered only across *different* ``(context, tag)``
  matching keys, preserving MPI's per-stream non-overtaking rule;
* payload truncation is off by default (it loses the message by
  design) and is enabled only by tests that assert the error path.

Usage::

    from repro.testing import ChaosConfig, ChaosDevice

    dev = ChaosDevice(inner_device, ChaosConfig(seed=7, duplicate_prob=0.2))
    # or via the registry, wrapping smdev:
    dev = new_instance("chaosdev")   # options: chaos_seed, chaos_inner, ...
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass, replace
from typing import Optional

from repro.buffer import Buffer
from repro.mpjdev.request import Request, Status
from repro.xdev.device import Device, DeviceConfig, new_instance, register_device
from repro.xdev.exceptions import XDevException
from repro.xdev.frames import FrameHeader, FrameType
from repro.xdev.processid import ProcessID
from repro.xdev.protocol import Transport

#: Environment variable consulted for the replay seed.
SEED_ENV_VAR = "REPRO_CHAOS_SEED"


def seed_from_env(default: Optional[int] = None) -> int:
    """The chaos seed: ``$REPRO_CHAOS_SEED``, *default*, or a fresh one."""
    raw = os.environ.get(SEED_ENV_VAR)
    if raw is not None:
        try:
            return int(raw)
        except ValueError:
            raise ValueError(
                f"{SEED_ENV_VAR} must be an integer seed, got {raw!r}"
            ) from None
    if default is not None:
        return default
    return random.SystemRandom().randrange(2**32)


@dataclass(frozen=True)
class ChaosConfig:
    """Fault plan for one :class:`ChaosTransport`.

    Probabilities are per-frame; each decision is drawn independently
    from the frame-keyed PRNG, so two frames with identical content
    get independent decisions via their occurrence counter.
    """

    seed: int = 0
    #: Hold the calling thread for ``delay_s`` before the write.
    delay_prob: float = 0.0
    delay_s: float = 0.002
    #: Hold a frame back and release it after the next safe write to
    #: the same destination (or after ``hold_flush_s`` at the latest).
    reorder_prob: float = 0.0
    hold_flush_s: float = 0.02
    #: Send RTS/RTR control frames twice.
    duplicate_prob: float = 0.0
    #: Cut the payload of EAGER/RNDZ_DATA frames in half (loses the
    #: message; exercises the failed-delivery path).
    truncate_prob: float = 0.0

    @classmethod
    def torture(cls, seed: int) -> "ChaosConfig":
        """The default torture mix: delays, reordering, duplicates."""
        return cls(
            seed=seed, delay_prob=0.15, reorder_prob=0.2, duplicate_prob=0.2
        )


@dataclass(frozen=True)
class ChaosEvent:
    """One injected fault, recorded for schedule comparison/replay."""

    action: str  # "delay" | "hold" | "swap" | "flush" | "duplicate" | "truncate"
    frame: str  # FrameType name
    context: int
    tag: int
    send_id: int
    recv_id: int
    occurrence: int

    def key(self) -> tuple:
        return (
            self.action,
            self.frame,
            self.context,
            self.tag,
            self.send_id,
            self.recv_id,
            self.occurrence,
        )


class _HeldFrame:
    __slots__ = (
        "dest", "segments", "match_key", "generation", "on_delivered", "route"
    )

    def __init__(
        self, dest, segments, match_key, generation, on_delivered=None, route=0
    ):
        self.dest = dest
        self.segments = segments
        self.match_key = match_key
        self.generation = generation
        # The engine's delivery fence rides along with a held frame:
        # the sender's memory stays referenced until the hold ends.
        self.on_delivered = on_delivered
        # Content route (endpoint inbox) the frame releases on — a
        # frame keeps its route through hold/swap/duplicate, so chaos
        # perturbs timing, never demux.
        self.route = route


#: Frame types whose delivery order is matching-relevant: they enter
#: the four-key matching queues, so per-(context, tag) FIFO from one
#: source is an MPI guarantee chaos must not break.
_MATCH_ORDERED = frozenset({FrameType.EAGER, FrameType.RTS})

#: Control frames safe to duplicate (the engine must reject the copy).
_DUPLICABLE = frozenset({FrameType.RTS, FrameType.RTR})

#: Frames carrying a payload that can be truncated.
_TRUNCATABLE = frozenset({FrameType.EAGER, FrameType.RNDZ_DATA})


class ChaosTransport(Transport):
    """Transport decorator injecting the :class:`ChaosConfig` plan."""

    #: Held-back and duplicated frames outlive write(), so chaos always
    #: retains segments regardless of what the inner transport does.
    retains_segments = True

    @property
    def routed(self) -> bool:  # type: ignore[override]
        """Chaos demuxes exactly as its inner transport does."""
        return bool(getattr(self.inner, "routed", False))

    def __init__(self, inner: Transport, config: ChaosConfig) -> None:
        self.inner = inner
        self.config = config
        self._engine = None
        self._lock = threading.Lock()
        #: Per-frame-identity occurrence counters (PRNG key component).
        self._occurrences: dict[tuple, int] = {}
        #: dest uid -> held frame awaiting a reorder partner.
        self._held: dict[int, _HeldFrame] = {}
        self._generation = 0
        #: dest uid -> lock serializing inner.write (the engine's
        #: channel lock no longer suffices once the timer flusher can
        #: also write).
        self._write_locks: dict[int, threading.Lock] = {}
        self._events: list[ChaosEvent] = []
        self._closed = False

    # ------------------------------------------------------------------
    # recording / introspection

    def events(self) -> list[ChaosEvent]:
        with self._lock:
            return list(self._events)

    def schedule(self) -> list[tuple]:
        """The injected-fault schedule as comparable tuples."""
        return [e.key() for e in self.events()]

    def _record(self, action: str, header: FrameHeader, occ: int) -> ChaosEvent:
        event = ChaosEvent(
            action=action,
            frame=header.type.name,
            context=header.context,
            tag=header.tag,
            send_id=header.send_id,
            recv_id=header.recv_id,
            occurrence=occ,
        )
        with self._lock:
            self._events.append(event)
        return event

    # ------------------------------------------------------------------
    # deterministic per-frame decisions

    def _frame_rng(self, header: FrameHeader, occ: int) -> random.Random:
        # Seeding with a string routes through SHA-512 inside Random,
        # which is stable across processes and interpreter versions —
        # unlike hash() of a tuple, which PYTHONHASHSEED could perturb
        # if a str ever entered the key.
        #
        # The causal header fields (clock, flow_src, flow_seq — see
        # repro.xdev.causal) are deliberately EXCLUDED from this key
        # and from _next_occurrence's identity: the Lamport clock value
        # depends on thread interleaving, so keying on it would give
        # the same logical frame different fault decisions run to run
        # and break REPRO_CHAOS_SEED replay.  Flow ids ride through
        # chaos untouched; fault decisions never depend on them.
        key = (
            f"{self.config.seed}:{int(header.type)}:{header.context}:"
            f"{header.tag}:{header.send_id}:{header.recv_id}:"
            f"{header.payload_len}:{occ}"
        )
        return random.Random(key)

    def _next_occurrence(self, header: FrameHeader) -> int:
        ident = (
            int(header.type),
            header.context,
            header.tag,
            header.send_id,
            header.recv_id,
            header.payload_len,
        )
        with self._lock:
            occ = self._occurrences.get(ident, 0) + 1
            self._occurrences[ident] = occ
            return occ

    # ------------------------------------------------------------------
    # Transport API

    def start(self, engine) -> None:
        self._engine = engine
        self.inner.start(engine)

    def _write_lock(self, dest: ProcessID) -> threading.Lock:
        with self._lock:
            lock = self._write_locks.get(dest.uid)
            if lock is None:
                lock = threading.Lock()
                self._write_locks[dest.uid] = lock
            return lock

    #: Same-dest ordering comes from this transport's own per-dest
    #: ``_write_lock`` — it has to, because replay/delay threads write
    #: too and the engine's channel lock cannot cover them.  Declaring
    #: it makes the engine skip its channel lock, so the inner
    #: transport's prepare_write (which may take the conn-cache lock)
    #: never runs under 'channel'.
    self_locking = True

    def prepare_write(self, dest: ProcessID, route: int = 0) -> None:
        """No-op: delayed/replayed frames perform the actual inner
        write on chaos worker threads, so the inner transport's
        prepare/finish (which pins per-*thread* state) must bracket
        :meth:`_inner_write` on whichever thread runs it — not the
        caller's thread here."""

    def finish_write(self, dest: ProcessID, route: int = 0) -> None:
        """No-op; see :meth:`prepare_write`."""

    def extend_peers(self, pids) -> int:
        return self.inner.extend_peers(pids)

    def _inner_write(
        self, dest: ProcessID, segments, on_delivered=None, route: int = 0
    ) -> None:
        self.inner.prepare_write(dest, route)
        try:
            self._locked_inner_write(dest, segments, on_delivered, route)
        finally:
            self.inner.finish_write(dest, route)

    def _locked_inner_write(
        self, dest: ProcessID, segments, on_delivered=None, route: int = 0
    ) -> None:
        with self._write_lock(dest):
            if self.routed:
                if on_delivered is not None and self.inner.retains_segments:
                    self.inner.write(dest, segments, on_delivered, route=route)
                    return
                self.inner.write(dest, segments, route=route)
            elif on_delivered is not None and self.inner.retains_segments:
                self.inner.write(dest, segments, on_delivered)
                return
            else:
                self.inner.write(dest, segments)
        if on_delivered is not None:
            on_delivered()

    def write(
        self, dest: ProcessID, segments, on_delivered=None, route: int = 0
    ) -> None:
        if self._closed:
            raise XDevException("chaos transport closed")
        header = FrameHeader.decode(segments[0])
        occ = self._next_occurrence(header)
        rng = self._frame_rng(header, occ)
        cfg = self.config
        # Decision draw order is part of the deterministic contract:
        # duplicate, truncate, delay, hold — always in this order.
        duplicate = (
            header.type in _DUPLICABLE and rng.random() < cfg.duplicate_prob
        )
        truncate = (
            header.type in _TRUNCATABLE
            and header.payload_len > 0
            and rng.random() < cfg.truncate_prob
        )
        delay = rng.random() < cfg.delay_prob
        hold = rng.random() < cfg.reorder_prob

        if truncate:
            self._record("truncate", header, occ)
            payload = b"".join(bytes(s) for s in segments[1:])
            # Keep the header's advertised length: the receiver sees a
            # frame that claims more bytes than it carries, exactly
            # like a connection cut mid-message.
            segments = [segments[0], payload[: len(payload) // 2]]
        if delay:
            self._record("delay", header, occ)
            time.sleep(cfg.delay_s)  # reprolint: allow[no-block-in-poller] -- the injected latency IS the chaos: a bounded, configured delay that torture runs use to widen race windows on purpose

        match_key = (
            (header.context, header.tag)
            if header.type in _MATCH_ORDERED
            else None
        )

        released: Optional[_HeldFrame] = None
        swap = False
        held_entry: Optional[_HeldFrame] = None
        with self._lock:
            held = self._held.get(dest.uid)
            if held is not None:
                del self._held[dest.uid]
                released = held
                # Swapping is only safe across different matching keys;
                # identical keys must keep their original order.
                swap = (
                    held.match_key is None
                    or match_key is None
                    or held.match_key != match_key
                )
            elif hold and not self._closed:
                self._generation += 1
                held_entry = _HeldFrame(
                    dest, segments, match_key, self._generation, on_delivered,
                    route,
                )
                self._held[dest.uid] = held_entry

        if held_entry is not None:
            self._record("hold", header, occ)
            timer = threading.Timer(
                cfg.hold_flush_s, self._flush_held, args=(dest, held_entry)
            )
            timer.daemon = True
            timer.start()
            # The duplicate decision still applies to a held RTS:
            # send the copy now, the original later.  (Duplicable
            # control frames never carry a delivery fence.)
            if duplicate:
                self._record("duplicate", header, occ)
                self._inner_write(dest, segments, route=route)
            return

        if released is not None and swap:
            self._record("swap", header, occ)
            self._inner_write(dest, segments, on_delivered, route=route)
            self._inner_write(
                released.dest, released.segments, released.on_delivered,
                route=released.route,
            )
        elif released is not None:
            self._inner_write(
                released.dest, released.segments, released.on_delivered,
                route=released.route,
            )
            self._inner_write(dest, segments, on_delivered, route=route)
        else:
            self._inner_write(dest, segments, on_delivered, route=route)
        if duplicate:
            self._record("duplicate", header, occ)
            self._inner_write(dest, segments, route=route)

    def _flush_held(self, dest: ProcessID, entry: _HeldFrame) -> None:
        """Timer valve: a held frame with no reorder partner must still
        be delivered, or the job deadlocks on an injected fault."""
        with self._lock:
            current = self._held.get(dest.uid)
            if current is None or current.generation != entry.generation:
                return  # already released by a later write
            del self._held[dest.uid]
        self._inner_write(
            entry.dest, entry.segments, entry.on_delivered, route=entry.route
        )

    def flush(self) -> None:
        """Deliver every held frame now (tests call this at barriers)."""
        with self._lock:
            held = list(self._held.values())
            self._held.clear()
        for entry in held:
            self._inner_write(
                entry.dest, entry.segments, entry.on_delivered, route=entry.route
            )

    def close(self) -> None:
        self._closed = True
        self.flush()
        self.inner.close()


class ChaosDevice(Device):
    """A Device decorator running its inner device's engine over a
    :class:`ChaosTransport`.

    Composable exactly like :class:`repro.trace.TracingDevice`; the
    inner device must be engine-based (smdev/niodev), because the
    faults are injected below the protocol engine.
    """

    device_name = "chaosdev"

    def __init__(
        self,
        inner: Optional[Device] = None,
        config: Optional[ChaosConfig] = None,
    ) -> None:
        self.inner = inner
        self.config = config
        self.chaos: Optional[ChaosTransport] = None

    # ------------------------------------------------------------------
    # lifecycle

    def init(self, args: DeviceConfig) -> list[ProcessID]:
        options = dict(args.options or {})
        if self.inner is None:
            self.inner = new_instance(str(options.get("chaos_inner", "smdev")))
        if self.config is None:
            cfg = options.get("chaos_config")
            if cfg is None:
                cfg = ChaosConfig.torture(seed_from_env(options.get("chaos_seed")))
            elif options.get("chaos_seed") is not None:
                cfg = replace(cfg, seed=int(options["chaos_seed"]))
            self.config = cfg
        pids = self.inner.init(args)
        engine = getattr(self.inner, "engine", None)
        if engine is None:
            raise XDevException(
                f"chaosdev needs an engine-based inner device, got "
                f"{type(self.inner).__name__}"
            )
        # Swap the engine's transport: every outbound frame now passes
        # through the fault plan.  Inbound frames were perturbed by the
        # sender's own ChaosTransport, so outbound interception covers
        # the whole fabric once every rank is wrapped.
        self.chaos = ChaosTransport(engine.transport, self.config)
        engine.transport = self.chaos
        return pids

    @property
    def engine(self):
        return self.inner.engine  # type: ignore[union-attr]

    def id(self) -> ProcessID:
        return self.inner.id()

    def finish(self) -> None:
        if self.inner is not None:
            self.inner.finish()

    def get_send_overhead(self) -> int:
        return self.inner.get_send_overhead()

    def get_recv_overhead(self) -> int:
        return self.inner.get_recv_overhead()

    # ------------------------------------------------------------------
    # chaos introspection

    def events(self) -> list[ChaosEvent]:
        return self.chaos.events() if self.chaos is not None else []

    def schedule(self) -> list[tuple]:
        return self.chaos.schedule() if self.chaos is not None else []

    @property
    def seed(self) -> int:
        assert self.config is not None
        return self.config.seed

    # ------------------------------------------------------------------
    # point-to-point — pure delegation

    def isend(self, buf: Buffer, dest: ProcessID, tag: int, context: int) -> Request:
        return self.inner.isend(buf, dest, tag, context)

    def send(self, buf: Buffer, dest: ProcessID, tag: int, context: int) -> None:
        self.inner.send(buf, dest, tag, context)

    def issend(self, buf: Buffer, dest: ProcessID, tag: int, context: int) -> Request:
        return self.inner.issend(buf, dest, tag, context)

    def ssend(self, buf: Buffer, dest: ProcessID, tag: int, context: int) -> None:
        self.inner.ssend(buf, dest, tag, context)

    def irecv(self, buf: Buffer, src: ProcessID | int, tag: int, context: int) -> Request:
        return self.inner.irecv(buf, src, tag, context)

    def recv(self, buf: Buffer, src: ProcessID | int, tag: int, context: int) -> Status:
        return self.inner.recv(buf, src, tag, context)

    def iprobe(self, src: ProcessID | int, tag: int, context: int) -> Status | None:
        return self.inner.iprobe(src, tag, context)

    def probe(self, src: ProcessID | int, tag: int, context: int) -> Status:
        return self.inner.probe(src, tag, context)

    def improbe(self, src: ProcessID | int, tag: int, context: int):
        return self.inner.improbe(src, tag, context)

    def mprobe(self, src: ProcessID | int, tag: int, context: int):
        return self.inner.mprobe(src, tag, context)

    def mrecv(self, match, buf: Buffer) -> Request:
        return self.inner.mrecv(match, buf)

    def introspect(self) -> dict:
        return self.inner.introspect()

    def peek(self, timeout: float | None = None) -> Request:
        return self.inner.peek(timeout=timeout)


register_device("chaosdev")(ChaosDevice)
