"""Deadlock diagnostics: lock-order tracking and a progress watchdog.

Two cooperating tools for the question every hang raises — *what is
everyone waiting on?*

:class:`LockGraph` + :class:`InstrumentedLock` wrap the engine's locks
(the receive/send communication-set locks and the per-destination
channel locks, paper Section IV-A) so every acquisition is checked
against the global lock-order graph.  A cycle in that graph is a
potential deadlock even if this run got lucky; violations are recorded
with both threads' held-lock stacks.

:class:`ProgressWatchdog` watches a set of engines and fires when
outstanding work exists but no request has completed within a budget.
Its report is trace-integrated: give it the job's
:class:`~repro.trace.TracingDevice` wrappers and the dump includes the
stalled operations (:func:`repro.trace.detect_stalled`) next to the
engine-side pending sets.

Usage::

    graph = LockGraph()
    for dev in devices:
        instrument_engine(dev.engine, graph)
    with ProgressWatchdog([d.engine for d in devices], budget_s=2.0) as dog:
        ...  # run the workload
    assert not dog.stalls, dog.stalls[0]
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional, Sequence

from repro.xdev import locknames
from repro.xdev.exceptions import XDevException


class LockOrderViolation:
    """A lock acquisition that closes a cycle in the lock-order graph."""

    def __init__(
        self, thread: str, acquiring: str, held: tuple[str, ...], cycle: list[str]
    ) -> None:
        self.thread = thread
        self.acquiring = acquiring
        self.held = held
        self.cycle = cycle

    def __repr__(self) -> str:
        return (
            f"LockOrderViolation(thread={self.thread!r}, "
            f"acquiring={self.acquiring!r} while holding {self.held}, "
            f"cycle={' -> '.join(self.cycle)})"
        )


class LockGraph:
    """Global acquired-before graph over named locks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._edges: dict[str, set[str]] = {}
        self._local = threading.local()
        self.violations: list[LockOrderViolation] = []

    # ------------------------------------------------------------------

    def _held(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _find_path(self, start: str, goal: str) -> Optional[list[str]]:
        """DFS for a path start -> ... -> goal in the edge graph."""
        seen = {start}
        frontier = [(start, [start])]
        while frontier:
            node, path = frontier.pop()
            if node == goal:
                return path
            for nxt in self._edges.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append((nxt, path + [nxt]))
        return None

    def before_acquire(self, name: str) -> None:
        """Record held->name edges; detect any cycle they close."""
        held = self._held()
        if not held:
            return
        with self._lock:
            for h in held:
                if h == name:
                    continue
                # A cycle exists if name already reaches h.
                path = self._find_path(name, h)
                if path is not None:
                    self.violations.append(
                        LockOrderViolation(
                            threading.current_thread().name,
                            name,
                            tuple(held),
                            path + [name],
                        )
                    )
                self._edges.setdefault(h, set()).add(name)

    def on_acquired(self, name: str) -> None:
        self._held().append(name)

    def on_released(self, name: str) -> None:
        held = self._held()
        # Remove the most recent occurrence (locks may be released
        # out of LIFO order — the engine takes its two set locks
        # sequentially, never nested, and this must not confuse us).
        for i in range(len(held) - 1, -1, -1):
            if held[i] == name:
                del held[i]
                return

    # ------------------------------------------------------------------

    def edges(self) -> dict[str, set[str]]:
        with self._lock:
            return {k: set(v) for k, v in self._edges.items()}

    def summary(self) -> dict[str, Any]:
        with self._lock:
            return {
                "locks": sorted(
                    set(self._edges) | {e for v in self._edges.values() for e in v}
                ),
                "edges": sorted(
                    (a, b) for a, v in self._edges.items() for b in v
                ),
                "violations": [repr(v) for v in self.violations],
            }


class InstrumentedLock:
    """A ``threading.Lock`` that reports to a :class:`LockGraph`.

    Implements ``_is_owned`` so it can back a ``threading.Condition``
    (the engine's receive condition is built on the receive lock).
    """

    def __init__(self, graph: LockGraph, name: str) -> None:
        self._graph = graph
        self.name = name
        self._inner = threading.Lock()
        self._owner: Optional[int] = None

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._graph.before_acquire(self.name)
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._owner = threading.get_ident()
            self._graph.on_acquired(self.name)
        return got

    def release(self) -> None:
        self._owner = None
        self._graph.on_released(self.name)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def _is_owned(self) -> bool:
        return self._owner == threading.get_ident()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"InstrumentedLock({self.name!r}, locked={self.locked()})"


def instrument_engine(engine, graph: LockGraph, label: Optional[str] = None) -> LockGraph:
    """Swap a ProtocolEngine's locks for instrumented ones.

    Must run before traffic starts.  Covers the endpoint-sharded lock
    set: every matching-shard lock, the wildcard-domain lock (acquired
    only after its shards — the ordering the LockGraph verifies), the
    send-set and rendezvous-id locks, the per-endpoint completion
    shard locks, and the (dest, route shard) channel locks.  Returns
    *graph* for chaining.
    """
    # Node names are built from the canonical lock classes in
    # repro.xdev.locknames — the same vocabulary the static lock-order
    # checker (repro.analysis.locks) reports in, so a reprolint finding
    # and a watchdog stall snapshot cross-reference by name.
    me = label if label is not None else f"rank{engine.my_pid.uid}"
    matcher = engine._matcher
    for i, shard in enumerate(matcher._shards):
        shard.lock = InstrumentedLock(graph, f"{me}:{locknames.RECV_SHARD}{i}")
    matcher._wc_lock = InstrumentedLock(graph, f"{me}:{locknames.RECV_WILDCARD}")
    engine._send_lock = InstrumentedLock(graph, f"{me}:{locknames.SEND_SETS}")
    engine._rndz_lock = InstrumentedLock(
        graph, f"{me}:{locknames.RENDEZVOUS_IDS}"
    )
    completions = engine._completions
    completions._locks = [
        InstrumentedLock(graph, f"{me}:{locknames.COMPLETED}{i}")
        for i in range(completions.n)
    ]

    guard = engine._channel_locks_guard
    channel_locks = engine._channel_locks
    endpoints = engine.endpoints
    routed = engine._routed

    def channel_lock(dest, route=0):
        shard = route % endpoints if routed else 0
        key = (dest.uid, shard)
        with guard:
            lock = channel_locks.get(key)
            if lock is None:
                lock = InstrumentedLock(
                    graph, f"{me}:{locknames.CHANNEL}->{dest.uid}.{shard}"
                )
                channel_locks[key] = lock
            return lock

    # Instance attribute shadows the bound method.
    engine.channel_lock = channel_lock
    return graph


class ProgressWatchdog:
    """Fires when outstanding work makes no progress within a budget.

    Progress is the engines' monotonically increasing ``completions``
    counter; outstanding work is any pending receive, pending
    rendezvous send, or unexpected message.  The budget is therefore
    virtual: an idle engine (nothing outstanding) never trips it, and
    a slow-but-moving run resets it on every completion.
    """

    def __init__(
        self,
        engines: Sequence[Any],
        budget_s: float = 5.0,
        poll_s: float = 0.02,
        tracers: Sequence[Any] = (),
        graph: Optional[LockGraph] = None,
        on_stall: Optional[Callable[[dict], None]] = None,
    ) -> None:
        self.engines = list(engines)
        self.budget_s = budget_s
        self.poll_s = poll_s
        self.tracers = list(tracers)
        self.graph = graph
        self.on_stall = on_stall
        self.stalls: list[dict] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------

    def _completions(self) -> int:
        return sum(e.stats["completions"] for e in self.engines)

    def _outstanding(self) -> bool:
        for e in self.engines:
            if e.pending_recv_count() or e.unexpected_count():
                return True
            if e.pending_send_count() or e.rendezvous_recv_count():
                return True
        return False

    def report(self) -> dict:
        """Snapshot of everything a deadlock triage needs."""
        per_engine = []
        for e in self.engines:
            per_engine.append(
                {
                    "rank": e.my_pid.uid,
                    "pending_recvs": e.pending_recv_count(),
                    "unexpected_messages": e.unexpected_count(),
                    "pending_sends": e.pending_send_count(),
                    "rendezvous_recvs": e.rendezvous_recv_count(),
                    "stats": dict(e.stats),
                }
            )
        stalled_ops = []
        if self.tracers:
            for i, tracer in enumerate(self.tracers):
                for event in tracer.detect_stalled(min_age_s=0.0):
                    stalled_ops.append(
                        {
                            "rank": i,
                            "op": event.op,
                            "peer": event.peer,
                            "tag": event.tag,
                            "context": event.context,
                            "posted_at": event.time,
                        }
                    )
        return {
            "completions": self._completions(),
            "engines": per_engine,
            "stalled_operations": stalled_ops,
            "locks": self.graph.summary() if self.graph is not None else None,
        }

    # ------------------------------------------------------------------

    @staticmethod
    def _write_stall_file(stall: dict) -> None:
        """Persist the stall report next to the traces (if tracing is on)."""
        try:
            from repro.obs.introspect import write_stall_file

            write_stall_file(stall)
        except Exception:  # noqa: BLE001 - diagnostics must not kill the dog
            pass

    def _run(self) -> None:
        last = self._completions()
        last_change = time.monotonic()
        while not self._stop.wait(self.poll_s):
            now = time.monotonic()
            current = self._completions()
            if current != last:
                last, last_change = current, now
                continue
            if not self._outstanding():
                last_change = now
                continue
            if now - last_change >= self.budget_s:
                stall = self.report()
                stall["stuck_for_s"] = round(now - last_change, 3)
                self.stalls.append(stall)
                self._write_stall_file(stall)
                if self.on_stall is not None:
                    self.on_stall(stall)
                else:  # pragma: no cover - interactive aid
                    print(f"[watchdog] stuck progress: {stall}")
                last_change = now  # re-arm rather than spam

    def start(self) -> "ProgressWatchdog":
        if self._thread is not None:
            raise XDevException("watchdog already started")
        self._thread = threading.Thread(
            target=self._run, name="progress-watchdog", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "ProgressWatchdog":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
