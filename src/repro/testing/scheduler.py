"""Seeded interleaving scheduler for smdev's per-rank frame queues.

smdev delivers frames in exact arrival order, which means a test run
exercises exactly one interleaving — whichever one the OS scheduler
happened to produce.  :func:`make_scheduled_fabric` builds an
:class:`~repro.xdev.smdev.SMFabric` whose inboxes are
:class:`ScheduledInbox` objects: each ``get()`` picks the next frame
to deliver with a PRNG seeded by the test, permuting delivery across
independent streams while preserving MPI's per-stream FIFO guarantee
(frames from one source with one ``(context, tag)`` key are never
reordered against each other).

Every choice is recorded in the shared :class:`SeededSchedule`; a
failing test prints its seed, and re-running with that seed replays
the same sequence of scheduler choices.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Optional

from repro.xdev.frames import FrameHeader, FrameType
from repro.xdev.smdev import SMFabric


class SeededSchedule:
    """The PRNG and choice log shared by every inbox of one job."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        #: (rank, chosen index, number of candidates, endpoint) per
        #: decision — one entry for every frame delivery of the job,
        #: across every rank's every endpoint inbox.
        self.choices: list[tuple[int, int, int, int]] = []

    def pick(self, rank: int, n: int, endpoint: int = 0) -> int:
        """Choose one of *n* deliverable frames for one of *rank*'s
        endpoint inboxes."""
        with self._lock:
            idx = self._rng.randrange(n) if n > 1 else 0
            self.choices.append((rank, idx, n, endpoint))
            return idx

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SeededSchedule(seed={self.seed}, choices={len(self.choices)})"


class ScheduledInbox:
    """A drop-in replacement for smdev's ``queue.Queue`` inboxes.

    Buffers enqueued frames and, on every ``get()``, delivers one
    chosen by the :class:`SeededSchedule` among the *eligible heads*:
    for matching-ordered frames (EAGER/RTS) only the earliest frame of
    each ``(src, context, tag)`` stream is a candidate; id-addressed
    frames (RTR/RNDZ_DATA) and BYE are always candidates.  Control
    items (the transport's shutdown sentinel) are delivered only once
    the buffer is empty, so no frame is lost at teardown.
    """

    def __init__(
        self,
        schedule: SeededSchedule,
        rank: int,
        gather_window_s: float = 0.001,
        endpoint: int = 0,
    ) -> None:
        self._schedule = schedule
        self._rank = rank
        self._endpoint = endpoint
        #: After the first frame arrives, wait this long for rivals so
        #: the scheduler has an actual choice to make under contention.
        self._gather_window_s = gather_window_s
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._frames: list[tuple[Any, Any]] = []  # (item, stream key | None)
        self._controls: list[Any] = []

    @staticmethod
    def _stream_key(item: Any) -> Optional[tuple]:
        src_pid, segments, _fence = item
        header = FrameHeader.decode(segments[0])
        if header.type in (FrameType.EAGER, FrameType.RTS):
            return (src_pid.uid, header.context, header.tag)
        return None

    # queue.Queue-compatible surface used by SMTransport ---------------

    def put(self, item: Any) -> None:
        with self._cond:
            if isinstance(item, tuple) and len(item) == 3:
                self._frames.append((item, self._stream_key(item)))
            else:
                self._controls.append(item)
            self._cond.notify_all()

    def get(self) -> Any:
        with self._cond:
            self._cond.wait_for(lambda: self._frames or self._controls)
            if not self._frames:
                return self._controls.pop(0)
            if self._gather_window_s > 0 and len(self._frames) < 2:
                deadline = time.monotonic() + self._gather_window_s
                while len(self._frames) < 2:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        break
            eligible: list[int] = []
            seen_streams: set[tuple] = set()
            for i, (_item, key) in enumerate(self._frames):
                if key is None:
                    eligible.append(i)
                elif key not in seen_streams:
                    seen_streams.add(key)
                    eligible.append(i)
            choice = self._schedule.pick(
                self._rank, len(eligible), self._endpoint
            )
            item, _key = self._frames.pop(eligible[choice])
            return item

    def qsize(self) -> int:
        with self._lock:
            return len(self._frames) + len(self._controls)


def make_scheduled_fabric(
    nprocs: int,
    seed: int,
    schedule: Optional[SeededSchedule] = None,
    gather_window_s: float = 0.001,
    endpoints: Optional[int] = None,
) -> tuple[SMFabric, SeededSchedule]:
    """An SMFabric whose inboxes replay the seeded schedule.

    The fabric keeps smdev's per-endpoint inbox grid (the
    ``REPRO_ENDPOINTS`` knob, or *endpoints* explicitly): every
    endpoint inbox of every rank is a :class:`ScheduledInbox` drawing
    from the one shared :class:`SeededSchedule`, so interleavings are
    schedulable — and replayable — across endpoints, not just ranks.
    """
    if schedule is None:
        schedule = SeededSchedule(seed)
    fabric = SMFabric(nprocs, endpoints=endpoints)
    fabric.inboxes = [
        [
            ScheduledInbox(
                schedule, rank, gather_window_s=gather_window_s, endpoint=ep
            )
            for ep in range(fabric.endpoints)
        ]
        for rank in range(nprocs)
    ]
    return fabric, schedule
