"""Pytest fixtures for the concurrency-torture harness.

Loaded as a plugin from the test suite's root ``conftest.py``::

    pytest_plugins = ["repro.testing.fixtures"]

Fixtures:

``chaos_seed``
    The run's replay seed — ``$REPRO_CHAOS_SEED`` if set, fresh
    otherwise.  When a test using it fails, the seed is printed in a
    ``REPRO_CHAOS_SEED=... `` banner so the schedule can be replayed.

``chaos_job``
    A 2-rank chaosdev-over-smdev job under the default torture mix,
    with every engine's locks instrumented into a shared
    :class:`~repro.testing.watchdog.LockGraph`.

``seeded_schedule``
    A :class:`~repro.testing.scheduler.SeededSchedule` plus a factory
    for smdev jobs whose inboxes replay it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import pytest

from repro.testing.chaos import ChaosConfig, seed_from_env
from repro.testing.scheduler import SeededSchedule, make_scheduled_fabric
from repro.testing.watchdog import LockGraph, instrument_engine
from repro.xdev.device import DeviceConfig, new_instance
from repro.xdev.smdev import SMFabric


def make_chaos_job(
    nprocs: int,
    seed: int,
    config: Optional[ChaosConfig] = None,
    options: Optional[dict] = None,
    graph: Optional[LockGraph] = None,
    endpoints: Optional[int] = None,
):
    """Stand up *nprocs* chaosdev-wrapped smdev ranks on one fabric.

    *endpoints* overrides the ``REPRO_ENDPOINTS`` inbox/shard count so
    a test can pin the sharding degree without env juggling.
    """
    cfg = config if config is not None else ChaosConfig.torture(seed)
    fabric = SMFabric(nprocs, endpoints=endpoints)
    devices = []
    for rank in range(nprocs):
        dev = new_instance("chaosdev")
        dev.config = cfg
        opts = dict(options or {})
        dev.init(DeviceConfig(rank=rank, nprocs=nprocs, fabric=fabric, options=opts))
        if graph is not None:
            instrument_engine(dev.engine, graph)
        devices.append(dev)
    return devices, fabric.pids


def make_scheduled_job(
    nprocs: int,
    schedule: SeededSchedule,
    options: Optional[dict] = None,
    gather_window_s: float = 0.001,
    endpoints: Optional[int] = None,
):
    """Stand up *nprocs* smdev ranks over a schedule-replaying fabric."""
    fabric, _ = make_scheduled_fabric(
        nprocs,
        schedule.seed,
        schedule=schedule,
        gather_window_s=gather_window_s,
        endpoints=endpoints,
    )
    devices = []
    for rank in range(nprocs):
        dev = new_instance("smdev")
        dev.init(
            DeviceConfig(
                rank=rank, nprocs=nprocs, fabric=fabric, options=dict(options or {})
            )
        )
        devices.append(dev)
    return devices, fabric.pids


# ----------------------------------------------------------------------
# failure-aware seed reporting

@pytest.hookimpl(tryfirst=True, hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Stash each phase's report on the item so fixture finalizers can
    tell whether the test failed (the standard pytest recipe)."""
    outcome = yield
    rep = outcome.get_result()
    setattr(item, f"rep_{rep.when}", rep)


def _failed(request) -> bool:
    rep = getattr(request.node, "rep_call", None)
    return rep is not None and rep.failed


#: Default replay seed: the tier-1 suite must be reproducible run to
#: run, so fresh seeds are opt-in (REPRO_CHAOS_FRESH=1, as CI's
#: non-blocking torture job does) rather than the default.
DEFAULT_SEED = 20060901


@pytest.fixture
def chaos_seed(request):
    import os

    if os.environ.get("REPRO_CHAOS_FRESH"):
        seed = seed_from_env()
    else:
        seed = seed_from_env(default=DEFAULT_SEED)
    yield seed
    if _failed(request):
        print(
            f"\n*** chaos torture failure — replay this schedule with:"
            f"\n***   REPRO_CHAOS_SEED={seed} python -m pytest "
            f"{request.node.nodeid!r}\n"
        )


@dataclass
class ChaosJob:
    """What the ``chaos_job`` fixture hands to a test."""

    devices: list
    pids: list
    seed: int
    graph: LockGraph
    config: ChaosConfig

    @property
    def engines(self) -> list:
        return [d.engine for d in self.devices]

    def schedules(self) -> list[list[tuple]]:
        """Per-rank injected-fault schedules (for replay comparison)."""
        return [d.schedule() for d in self.devices]


@pytest.fixture
def chaos_job(chaos_seed):
    config = ChaosConfig.torture(chaos_seed)
    graph = LockGraph()
    devices, pids = make_chaos_job(2, chaos_seed, config=config, graph=graph)
    yield ChaosJob(devices, pids, chaos_seed, graph, config)
    for d in devices:
        d.finish()


@dataclass
class ScheduledJobFactory:
    """What the ``seeded_schedule`` fixture hands to a test."""

    seed: int
    schedule: SeededSchedule = field(init=False)
    _jobs: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self.schedule = SeededSchedule(self.seed)

    def job(self, nprocs: int, fresh: bool = False, **kwargs) -> tuple[list, list]:
        """Build a scheduled smdev job; ``fresh=True`` restarts the
        PRNG from the seed (replay of an identical run)."""
        if fresh:
            self.schedule = SeededSchedule(self.seed)
        devices, pids = make_scheduled_job(nprocs, self.schedule, **kwargs)
        self._jobs.append(devices)
        return devices, pids

    def finish(self) -> None:
        for devices in self._jobs:
            for d in devices:
                d.finish()
        self._jobs.clear()


@pytest.fixture
def seeded_schedule(chaos_seed):
    factory = ScheduledJobFactory(chaos_seed)
    yield factory
    factory.finish()
